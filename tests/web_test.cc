#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>

#include "common/strings.h"
#include "web/fileweb.h"
#include "web/graph.h"
#include "web/index.h"
#include "web/pagegen.h"
#include "web/synth.h"
#include "web/topologies.h"

namespace webdis::web {
namespace {

// -- WebGraph -------------------------------------------------------------------

TEST(WebGraphTest, AddAndFind) {
  WebGraph web;
  ASSERT_TRUE(web.AddDocument("http://a/x", "<title>T</title>body").ok());
  const WebGraph::Document* doc = web.Find("http://a/x");
  ASSERT_NE(doc, nullptr);
  EXPECT_EQ(doc->parsed.title, "T");
  EXPECT_TRUE(web.Has("http://a/x"));
  EXPECT_FALSE(web.Has("http://a/other"));
  EXPECT_EQ(web.num_documents(), 1u);
}

TEST(WebGraphTest, FragmentIgnoredInLookup) {
  WebGraph web;
  ASSERT_TRUE(web.AddDocument("http://a/x", "body").ok());
  EXPECT_TRUE(web.Has("http://a/x#section"));
}

TEST(WebGraphTest, DuplicateRejected) {
  WebGraph web;
  ASSERT_TRUE(web.AddDocument("http://a/x", "one").ok());
  EXPECT_FALSE(web.AddDocument("http://a/x", "two").ok());
}

TEST(WebGraphTest, BadUrlRejected) {
  WebGraph web;
  EXPECT_FALSE(web.AddDocument("", "x").ok());
}

TEST(WebGraphTest, HostsAndUrls) {
  WebGraph web;
  ASSERT_TRUE(web.AddDocument("http://b/1", "x").ok());
  ASSERT_TRUE(web.AddDocument("http://a/1", "x").ok());
  ASSERT_TRUE(web.AddDocument("http://a/2", "x").ok());
  EXPECT_EQ(web.Hosts(), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(web.UrlsOnHost("a"),
            (std::vector<std::string>{"http://a/1", "http://a/2"}));
  EXPECT_EQ(web.AllUrls().size(), 3u);
  EXPECT_EQ(web.TotalHtmlBytes(), 3u);
}

// -- Per-host secondary index ---------------------------------------------------

TEST(WebGraphTest, PerHostIndexTracksRemovals) {
  WebGraph web;
  ASSERT_TRUE(web.AddDocument("http://a/1", "x").ok());
  ASSERT_TRUE(web.AddDocument("http://a/2", "x").ok());
  ASSERT_TRUE(web.AddDocument("http://b/1", "x").ok());
  ASSERT_TRUE(web.RemoveDocument("http://a/1").ok());
  EXPECT_EQ(web.UrlsOnHost("a"), (std::vector<std::string>{"http://a/2"}));
  EXPECT_EQ(web.Hosts(), (std::vector<std::string>{"a", "b"}));
  // Removing a host's last document drops the host from the index.
  ASSERT_TRUE(web.RemoveDocument("http://a/2").ok());
  EXPECT_TRUE(web.UrlsOnHost("a").empty());
  EXPECT_EQ(web.Hosts(), (std::vector<std::string>{"b"}));
  EXPECT_EQ(web.num_documents(), 1u);
}

TEST(WebGraphTest, PerHostIndexTracksRetirement) {
  WebGraph web;
  ASSERT_TRUE(web.AddDocument("http://a/1", "x").ok());
  ASSERT_TRUE(web.AddDocument("http://a/2", "x").ok());
  ASSERT_TRUE(web.AddDocument("http://b/1", "x").ok());
  ASSERT_TRUE(web.RetireHost("a").ok());
  EXPECT_TRUE(web.HostRetired("a"));
  EXPECT_FALSE(web.HostRetired("b"));
  EXPECT_TRUE(web.UrlsOnHost("a").empty());
  EXPECT_EQ(web.Hosts(), (std::vector<std::string>{"b"}));
  EXPECT_FALSE(web.Has("http://a/1"));
  EXPECT_EQ(web.num_documents(), 1u);
  // Retiring an already-retired host is idempotent; an unknown host fails.
  EXPECT_TRUE(web.RetireHost("a").ok());
  EXPECT_FALSE(web.RetireHost("never-existed").ok());
}

TEST(WebGraphTest, UrlsOnHostUnknownHostIsEmpty) {
  WebGraph web;
  ASSERT_TRUE(web.AddDocument("http://a/1", "x").ok());
  EXPECT_TRUE(web.UrlsOnHost("zz").empty());
}

// -- Lazy materialization -------------------------------------------------------

TEST(WebGraphTest, LazyDocumentMaterializesOnFirstFind) {
  WebGraph web;
  web.SetPageGenerator([](std::string_view key, uint64_t aux0, uint64_t) {
    return "<title>doc " + std::to_string(aux0) + "</title>" +
           std::string(key);
  });
  ASSERT_TRUE(web.AddLazyDocument("http://a/1", 41, 0).ok());
  ASSERT_TRUE(web.AddLazyDocument("http://a/2", 42, 0).ok());
  EXPECT_EQ(web.num_documents(), 2u);
  EXPECT_EQ(web.num_materialized(), 0u);
  // Has() and the index paths never materialize.
  EXPECT_TRUE(web.Has("http://a/1"));
  EXPECT_EQ(web.UrlsOnHost("a").size(), 2u);
  EXPECT_EQ(web.num_materialized(), 0u);

  const WebGraph::Document* doc = web.Find("http://a/1");
  ASSERT_NE(doc, nullptr);
  EXPECT_EQ(doc->parsed.title, "doc 41");
  EXPECT_EQ(doc->version, 1u);
  EXPECT_EQ(web.num_materialized(), 1u);
  // Memoized: a second Find returns the same object, no recount.
  EXPECT_EQ(web.Find("http://a/1"), doc);
  EXPECT_EQ(web.num_materialized(), 1u);
  EXPECT_EQ(web.num_documents(), 2u);
}

TEST(WebGraphTest, UpdateOfLazyDocumentMaterializesAndBumpsVersion) {
  WebGraph web;
  web.SetPageGenerator([](std::string_view, uint64_t, uint64_t) {
    return std::string("<title>v1</title>");
  });
  ASSERT_TRUE(web.AddLazyDocument("http://a/1", 0, 0).ok());
  // Update before any Find: the document materializes (version 1), then
  // mutates — exactly the version the §9 result cache would key on.
  ASSERT_TRUE(web.UpdateDocument("http://a/1", "<title>v2</title>").ok());
  const WebGraph::Document* doc = web.Find("http://a/1");
  ASSERT_NE(doc, nullptr);
  EXPECT_EQ(doc->version, 2u);
  EXPECT_EQ(doc->parsed.title, "v2");
  EXPECT_EQ(web.num_materialized(), 1u);
}

TEST(WebGraphTest, HistoryCoversLazyDocuments) {
  WebGraph web;
  web.SetPageGenerator([](std::string_view, uint64_t, uint64_t) {
    return std::string("<title>gen</title>");
  });
  ASSERT_TRUE(web.AddLazyDocument("http://a/1", 0, 0).ok());
  web.EnableHistory();  // materializes so version-1 bodies are recorded
  EXPECT_EQ(web.num_materialized(), 1u);
  ASSERT_TRUE(web.UpdateDocument("http://a/1", "<title>edit</title>").ok());
  const std::string* v1 = web.HistoricalHtml("http://a/1", 1);
  ASSERT_NE(v1, nullptr);
  EXPECT_EQ(*v1, "<title>gen</title>");
  const std::string* v2 = web.HistoricalHtml("http://a/1", 2);
  ASSERT_NE(v2, nullptr);
  EXPECT_EQ(*v2, "<title>edit</title>");
}

TEST(WebGraphTest, ApproxTableBytesExcludesBodies) {
  WebGraph web;
  web.SetPageGenerator([](std::string_view, uint64_t, uint64_t) {
    return std::string(64 * 1024, 'x');  // big bodies, tiny table
  });
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        web.AddLazyDocument("http://h/" + std::to_string(i), 0, 0).ok());
  }
  const size_t at_rest = web.ApproxTableBytes();
  EXPECT_GT(at_rest, 0u);
  ASSERT_NE(web.Find("http://h/7"), nullptr);
  // Materializing a 64 KB body must not move the *table* footprint.
  EXPECT_EQ(web.ApproxTableBytes(), at_rest);
}

// -- Page generator --------------------------------------------------------------

TEST(PageGenTest, RenderedPageParsesBack) {
  PageSpec spec;
  spec.title = "A & B Lab";
  spec.paragraphs = {"First paragraph."};
  spec.sections = {{"Heading", "Section body"}};
  spec.links = {{"/people", "People"}, {"http://other/", "Other"}};
  spec.hr_blocks = {"CONVENER Someone"};
  spec.bold_notes = {"note"};
  const std::string html = RenderHtml(spec);
  const html::ParsedDocument doc =
      html::ParseDocument(html::ParseUrl("http://h/p").value(), html);
  EXPECT_EQ(doc.title, "A & B Lab");
  ASSERT_EQ(doc.anchors.size(), 2u);
  EXPECT_EQ(doc.anchors[0].ltype, html::LinkType::kLocal);
  EXPECT_EQ(doc.anchors[1].ltype, html::LinkType::kGlobal);
  bool convener_in_hr = false;
  for (const html::ParsedRelInfon& r : doc.rel_infons) {
    if (r.delimiter == "hr" && r.text == "CONVENER Someone") {
      convener_in_hr = true;
    }
  }
  EXPECT_TRUE(convener_in_hr);
}

// -- Synthetic web -----------------------------------------------------------------

TEST(SynthWebTest, DeterministicForSeed) {
  SynthWebOptions options;
  options.seed = 5;
  options.num_sites = 3;
  options.docs_per_site = 4;
  WebGraph a = GenerateSynthWeb(options);
  WebGraph b = GenerateSynthWeb(options);
  ASSERT_EQ(a.AllUrls(), b.AllUrls());
  for (const std::string& url : a.AllUrls()) {
    EXPECT_EQ(a.Find(url)->raw_html, b.Find(url)->raw_html);
  }
}

TEST(SynthWebTest, LazyPagesMatchEagerByteForByte) {
  // The lazy representation is purely a memory optimization: generating the
  // same web with lazy_pages on must produce byte-identical HTML for every
  // document once fetched — first-fetch replay re-runs the exact RNG draws
  // the eager build made.
  SynthWebOptions options;
  options.seed = 11;
  options.num_sites = 4;
  options.docs_per_site = 7;
  options.title_keyword_prob = 0.3;
  options.body_keyword_prob = 0.2;
  const WebGraph eager = GenerateSynthWeb(options);
  options.lazy_pages = true;
  const WebGraph lazy = GenerateSynthWeb(options);
  ASSERT_EQ(lazy.AllUrls(), eager.AllUrls());
  EXPECT_EQ(lazy.num_materialized(), 0u);
  // Fetch in an order unrelated to generation order: per-document captured
  // RNG states make replay order-independent.
  std::vector<std::string> urls = eager.AllUrls();
  for (size_t i = urls.size(); i-- > 0;) {
    const WebGraph::Document* e = eager.Find(urls[i]);
    const WebGraph::Document* l = lazy.Find(urls[i]);
    ASSERT_NE(l, nullptr) << urls[i];
    EXPECT_EQ(l->raw_html, e->raw_html) << urls[i];
    EXPECT_EQ(l->parsed.title, e->parsed.title) << urls[i];
  }
  EXPECT_EQ(lazy.num_materialized(), urls.size());
}

TEST(SynthWebTest, ShapeMatchesOptions) {
  SynthWebOptions options;
  options.num_sites = 4;
  options.docs_per_site = 6;
  options.local_links_per_doc = 2;
  options.global_links_per_doc = 1;
  WebGraph web = GenerateSynthWeb(options);
  EXPECT_EQ(web.num_documents(), 24u);
  EXPECT_EQ(web.Hosts().size(), 4u);
  for (const std::string& url : web.AllUrls()) {
    const WebGraph::Document* doc = web.Find(url);
    int local = 0, global = 0;
    for (const html::ParsedAnchor& a : doc->parsed.anchors) {
      if (a.ltype == html::LinkType::kLocal) ++local;
      if (a.ltype == html::LinkType::kGlobal) ++global;
      // Every link must resolve to an existing document.
      EXPECT_TRUE(web.Has(a.resolved.ResourceKey()))
          << a.resolved.ToString();
    }
    EXPECT_EQ(local, 2) << url;
    EXPECT_EQ(global, 1) << url;
  }
}

TEST(SynthWebTest, KeywordProbabilitiesHonored) {
  SynthWebOptions options;
  options.num_sites = 10;
  options.docs_per_site = 30;
  options.title_keyword_prob = 0.5;
  options.body_keyword_prob = 0.0;
  WebGraph web = GenerateSynthWeb(options);
  int title_hits = 0, body_hits = 0;
  for (const std::string& url : web.AllUrls()) {
    const WebGraph::Document* doc = web.Find(url);
    if (doc->parsed.title.find(kTitleKeyword) != std::string::npos) {
      ++title_hits;
    }
    for (const html::ParsedRelInfon& r : doc->parsed.rel_infons) {
      if (r.delimiter == "hr" &&
          r.text.find(kBodyKeyword) != std::string::npos) {
        ++body_hits;
      }
    }
  }
  EXPECT_GT(title_hits, 100);  // ~150 of 300
  EXPECT_LT(title_hits, 200);
  EXPECT_EQ(body_hits, 0);
}

// -- Topologies -------------------------------------------------------------------

TEST(TopologyTest, Fig1ShapeIsSane) {
  Scenario s = BuildFig1Scenario();
  EXPECT_EQ(s.web.num_documents(), 8u);
  // Node 1 has two global links; node 7 links back to node 1.
  const WebGraph::Document* n1 = s.web.Find("http://site1.example/node1");
  ASSERT_NE(n1, nullptr);
  EXPECT_EQ(n1->parsed.anchors.size(), 2u);
  for (const html::ParsedAnchor& a : n1->parsed.anchors) {
    EXPECT_EQ(a.ltype, html::LinkType::kGlobal);
  }
}

TEST(TopologyTest, Fig5Node4HasThreeFanouts) {
  Scenario s = BuildFig5Scenario();
  const WebGraph::Document* n4 = s.web.Find("http://site4.example/node4");
  ASSERT_NE(n4, nullptr);
  EXPECT_EQ(n4->parsed.anchors.size(), 3u);
}

TEST(TopologyTest, CampusWebHasFigure8Pages) {
  CampusScenario s = BuildCampusScenario();
  EXPECT_TRUE(s.web.Has("http://www.csa.iisc.ernet.in/Labs"));
  for (const auto& [url, name] : s.expected_conveners) {
    const WebGraph::Document* doc = s.web.Find(url);
    ASSERT_NE(doc, nullptr) << url;
    bool found = false;
    for (const html::ParsedRelInfon& r : doc->parsed.rel_infons) {
      if (r.delimiter == "hr" && r.text.find(name) != std::string::npos) {
        found = true;
      }
    }
    EXPECT_TRUE(found) << url << " missing convener " << name;
  }
}

TEST(TopologyTest, CampusLabsPageTitleMatchesQ1) {
  CampusScenario s = BuildCampusScenario();
  const WebGraph::Document* labs =
      s.web.Find("http://www.csa.iisc.ernet.in/Labs");
  ASSERT_NE(labs, nullptr);
  EXPECT_NE(webdis::ToLower(labs->parsed.title).find("lab"), std::string::npos);
}

// -- Search index -------------------------------------------------------------------

TEST(SearchIndexTest, LooksUpTitleAndBodyWords) {
  WebGraph web;
  ASSERT_TRUE(web.AddDocument("http://a/1",
                              "<title>Alpha Report</title>delta words")
                  .ok());
  ASSERT_TRUE(
      web.AddDocument("http://a/2", "<title>Other</title>alpha body").ok());
  SearchIndex index(web);
  EXPECT_EQ(index.Lookup("alpha"),
            (std::vector<std::string>{"http://a/1", "http://a/2"}));
  EXPECT_EQ(index.Lookup("ALPHA").size(), 2u);  // case folded
  EXPECT_EQ(index.Lookup("delta"), (std::vector<std::string>{"http://a/1"}));
  EXPECT_TRUE(index.Lookup("absent").empty());
}

TEST(SearchIndexTest, ConjunctiveLookup) {
  WebGraph web;
  ASSERT_TRUE(web.AddDocument("http://a/1", "alpha beta").ok());
  ASSERT_TRUE(web.AddDocument("http://a/2", "alpha gamma").ok());
  SearchIndex index(web);
  EXPECT_EQ(index.LookupAll({"alpha", "beta"}),
            (std::vector<std::string>{"http://a/1"}));
  EXPECT_TRUE(index.LookupAll({"alpha", "absent"}).empty());
  EXPECT_TRUE(index.LookupAll({}).empty());
}

// -- File-backed web loader ----------------------------------------------------

class FileWebTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Per-test-case (and per-process) directory: ctest registers each case
    // individually, so under `ctest -j` two FileWebTest processes can run
    // concurrently — a shared path would let one TearDown delete the other's
    // fixture mid-test.
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    root_ = std::filesystem::temp_directory_path() /
            ("webdis_fileweb_test_" + std::string(info->name()) + "_" +
             std::to_string(static_cast<long>(::getpid())));
    std::filesystem::remove_all(root_);
  }
  void TearDown() override { std::filesystem::remove_all(root_); }

  void Write(const std::string& relative, const std::string& contents) {
    const std::filesystem::path path = root_ / relative;
    std::filesystem::create_directories(path.parent_path());
    std::ofstream out(path, std::ios::binary);
    out << contents;
  }

  std::filesystem::path root_;
};

TEST_F(FileWebTest, LoadsHtmlTreeWithIndexMapping) {
  Write("host.example/index.html", "<title>Home</title>");
  Write("host.example/sub/page.html", "<title>Page</title>");
  Write("host.example/sub/index.html", "<title>Sub Home</title>");
  Write("host.example/skip.txt", "not html");
  Write("other.example/a.htm", "<title>A</title>");
  WebGraph web;
  auto stats = LoadWebFromDirectory(root_.string(), &web);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->documents_loaded, 4u);
  EXPECT_EQ(stats->hosts, 2u);
  EXPECT_EQ(stats->files_skipped, 1u);
  EXPECT_TRUE(web.Has("http://host.example/"));
  EXPECT_TRUE(web.Has("http://host.example/sub/page.html"));
  EXPECT_TRUE(web.Has("http://host.example/sub/"));
  EXPECT_TRUE(web.Has("http://other.example/a.htm"));
  EXPECT_EQ(web.Find("http://host.example/")->parsed.title, "Home");
}

TEST_F(FileWebTest, RelativeLinksResolveAgainstDerivedUrls) {
  Write("h.example/index.html", "<a href=\"sub/leaf.html\">x</a>");
  Write("h.example/sub/leaf.html", "<a href=\"../index.html\">up</a>");
  WebGraph web;
  auto stats = LoadWebFromDirectory(root_.string(), &web);
  ASSERT_TRUE(stats.ok());
  const WebGraph::Document* home = web.Find("http://h.example/");
  ASSERT_NE(home, nullptr);
  ASSERT_EQ(home->parsed.anchors.size(), 1u);
  EXPECT_EQ(home->parsed.anchors[0].resolved.ToString(),
            "http://h.example/sub/leaf.html");
  EXPECT_EQ(home->parsed.anchors[0].ltype, html::LinkType::kLocal);
}

TEST_F(FileWebTest, SaveLoadRoundTripsASynthWeb) {
  SynthWebOptions options;
  options.seed = 6;
  options.num_sites = 3;
  options.docs_per_site = 5;
  const WebGraph original = GenerateSynthWeb(options);
  auto written = SaveWebToDirectory(original, root_.string());
  ASSERT_TRUE(written.ok()) << written.status().ToString();
  EXPECT_EQ(written.value(), original.num_documents());
  WebGraph reloaded;
  auto stats = LoadWebFromDirectory(root_.string(), &reloaded);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  ASSERT_EQ(reloaded.AllUrls(), original.AllUrls());
  for (const std::string& url : original.AllUrls()) {
    EXPECT_EQ(reloaded.Find(url)->raw_html, original.Find(url)->raw_html)
        << url;
  }
}

TEST_F(FileWebTest, SaveRejectsFileDirectoryConflicts) {
  // "/lab" is both a document and the prefix of "/lab/projects" — no
  // faithful filesystem image exists.
  WebGraph web;
  ASSERT_TRUE(web.AddDocument("http://h/lab", "a").ok());
  ASSERT_TRUE(web.AddDocument("http://h/lab/projects", "b").ok());
  EXPECT_EQ(SaveWebToDirectory(web, root_.string()).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(FileWebTest, MissingDirectoryFails) {
  WebGraph web;
  EXPECT_EQ(LoadWebFromDirectory((root_ / "nope").string(), &web)
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST_F(FileWebTest, EmptyTreeFails) {
  std::filesystem::create_directories(root_ / "host.example");
  WebGraph web;
  EXPECT_EQ(LoadWebFromDirectory(root_.string(), &web).status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace webdis::web
