// Golden durability-format tests: serialize canonical snapshots and WAL
// records and compare against frozen byte images. A failure here means the
// storage format changed — bump server::kSnapshotVersion (adding a
// migration in DecodeSnapshot) and regenerate the goldens deliberately,
// never accidentally: a server must be able to recover from state written
// by its previous version, or reject it explicitly. The wal-parity lint
// (tools/webdis_lint.py) requires every WalRecordType to have an image
// here. See PROTOCOL.md §8.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>

#include "disql/compiler.h"
#include "query/web_query.h"
#include "serialize/encoder.h"
#include "serialize/framing.h"
#include "server/persist.h"

namespace webdis {
namespace {

using server::DurablePendingClone;
using server::DurableServerState;
using server::MemoryPersistBackend;
using server::PersistFaultRules;
using server::WalRecordType;

std::string Hex(const std::vector<uint8_t>& bytes) {
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  for (uint8_t b : bytes) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xF]);
  }
  return out;
}

// The same canonical single-stage clone as wire_golden_test.cc, with the
// identical frozen payload image: the WAL reuses the wire codec, so the two
// goldens must drift (or not) together.
const char kMinimalCloneHex[] =
    "0175" "0168" "0100" "01000000" "01" "0164" "01"
    "08646f63756d656e74" "0164" "00" "01" "0164" "0375726c" "01" "00"
    "0201" "01" "09687474703a2f2f612f" "00" "00";

query::WebQuery MinimalClone() {
  auto compiled = disql::CompileDisql(
      "select d.url from document d such that \"http://a/\" L d");
  EXPECT_TRUE(compiled.ok());
  query::WebQuery clone = compiled->web_query.Clone();
  clone.id.user = "u";
  clone.id.reply_host = "h";
  clone.id.reply_port = 1;
  clone.id.query_number = 1;
  clone.dest_urls = {"http://a/"};
  return clone;
}

// -- CRC-32 ------------------------------------------------------------------

TEST(PersistGoldenTest, Crc32CheckValue) {
  // The standard CRC-32 (IEEE 802.3, reflected) check value: any change to
  // the polynomial or bit order breaks every stored checksum.
  const std::string s = "123456789";
  EXPECT_EQ(serialize::Crc32(
                reinterpret_cast<const uint8_t*>(s.data()), s.size()),
            0xCBF43926u);
}

// -- WAL record images -------------------------------------------------------

TEST(PersistGoldenTest, CloneAdmittedImageIsStable) {
  serialize::Encoder payload;
  server::WalCloneAdmitted::EncodeFields(
      /*record_id=*/1, net::Endpoint{"s", 2}, /*tracked=*/true, /*seq=*/9,
      MinimalClone(), &payload);
  const std::vector<uint8_t> record =
      EncodeWalRecord(WalRecordType::kCloneAdmitted, payload.data());
  EXPECT_EQ(Hex(record),
            std::string("01"               /* type kCloneAdmitted */
                        "47000000"         /* payload length 71+clone */
                        "d693a435")        /* payload crc */
                + "0100000000000000"       /* record_id 1 */
                  "0173"                   /* from.host "s" */
                  "0200"                   /* from.port 2 */
                  "01"                     /* tracked */
                  "0900000000000000"       /* seq 9 */
                + kMinimalCloneHex);

  // Round-trip through the decoder.
  serialize::Decoder dec(payload.data());
  server::WalCloneAdmitted out;
  ASSERT_TRUE(server::WalCloneAdmitted::DecodeFrom(&dec, &out).ok());
  EXPECT_EQ(out.record_id, 1u);
  EXPECT_EQ(out.from, (net::Endpoint{"s", 2}));
  EXPECT_TRUE(out.tracked);
  EXPECT_EQ(out.seq, 9u);
  EXPECT_EQ(out.clone.id.Key(), MinimalClone().id.Key());
}

TEST(PersistGoldenTest, CloneCompletedImageIsStable) {
  serialize::Encoder payload;
  server::WalCloneCompleted{0x0102030405060708ull}.EncodeTo(&payload);
  const std::vector<uint8_t> record =
      EncodeWalRecord(WalRecordType::kCloneCompleted, payload.data());
  EXPECT_EQ(Hex(record), "02"                /* type kCloneCompleted */
                         "08000000"          /* payload length 8 */
                         "25edcca5"          /* payload crc */
                         "0807060504030201"  /* record_id (LE) */);

  serialize::Decoder dec(payload.data());
  server::WalCloneCompleted out;
  ASSERT_TRUE(server::WalCloneCompleted::DecodeFrom(&dec, &out).ok());
  EXPECT_EQ(out.record_id, 0x0102030405060708ull);
}

TEST(PersistGoldenTest, TransferSeenImageIsStable) {
  serialize::Encoder payload;
  server::WalTransferSeen{net::Endpoint{"h", 1}, 7}.EncodeTo(&payload);
  const std::vector<uint8_t> record =
      EncodeWalRecord(WalRecordType::kTransferSeen, payload.data());
  EXPECT_EQ(Hex(record), "03"                /* type kTransferSeen */
                         "0c000000"          /* payload length 12 */
                         "5a9f60ef"          /* payload crc */
                         "0168"              /* from.host "h" */
                         "0100"              /* from.port 1 */
                         "0700000000000000"  /* seq 7 */);

  serialize::Decoder dec(payload.data());
  server::WalTransferSeen out;
  ASSERT_TRUE(server::WalTransferSeen::DecodeFrom(&dec, &out).ok());
  EXPECT_EQ(out.from, (net::Endpoint{"h", 1}));
  EXPECT_EQ(out.seq, 7u);
}

TEST(PersistGoldenTest, QueryTerminatedImageIsStable) {
  serialize::Encoder payload;
  server::WalQueryTerminated{"k"}.EncodeTo(&payload);
  const std::vector<uint8_t> record =
      EncodeWalRecord(WalRecordType::kQueryTerminated, payload.data());
  EXPECT_EQ(Hex(record), "04"        /* type kQueryTerminated */
                         "02000000"  /* payload length 2 */
                         "6e9ba282"  /* payload crc */
                         "016b"      /* query_key "k" */);

  serialize::Decoder dec(payload.data());
  server::WalQueryTerminated out;
  ASSERT_TRUE(server::WalQueryTerminated::DecodeFrom(&dec, &out).ok());
  EXPECT_EQ(out.query_key, "k");
}

TEST(PersistGoldenTest, BatchAdmittedImageIsStable) {
  // Cross-query sharing (PROTOCOL.md §9.2): one append covers every member
  // of an admitted clone batch. Members own the contiguous record ids
  // first_record_id .. first_record_id + n - 1.
  serialize::Encoder payload;
  std::vector<query::WebQuery> members;
  members.push_back(MinimalClone());
  server::WalBatchAdmitted::EncodeFields(
      /*first_record_id=*/1, net::Endpoint{"s", 2}, /*tracked=*/true,
      /*seq=*/9, members, &payload);
  const std::vector<uint8_t> record =
      EncodeWalRecord(WalRecordType::kBatchAdmitted, payload.data());
  EXPECT_EQ(Hex(record),
            std::string("05"               /* type kBatchAdmitted */
                        "48000000"         /* payload length 72 */
                        "90d04ccc")        /* payload crc */
                + "0100000000000000"       /* first_record_id 1 */
                  "0173"                   /* from.host "s" */
                  "0200"                   /* from.port 2 */
                  "01"                     /* tracked */
                  "0900000000000000"       /* seq 9 */
                  "01"                     /* 1 member: */
                + kMinimalCloneHex);

  // Round-trip through the decoder.
  serialize::Decoder dec(payload.data());
  server::WalBatchAdmitted out;
  ASSERT_TRUE(server::WalBatchAdmitted::DecodeFrom(&dec, &out).ok());
  EXPECT_EQ(out.first_record_id, 1u);
  EXPECT_EQ(out.from, (net::Endpoint{"s", 2}));
  EXPECT_TRUE(out.tracked);
  EXPECT_EQ(out.seq, 9u);
  ASSERT_EQ(out.clones.size(), 1u);
  EXPECT_EQ(out.clones[0].id.Key(), MinimalClone().id.Key());
}

TEST(PersistGoldenTest, BatchAdmittedEmptyRejected) {
  // A zero-member batch record can never be replayed meaningfully; the
  // decoder rejects it as corruption rather than admitting nothing.
  serialize::Encoder payload;
  payload.PutU64(1);
  payload.PutString("s");
  payload.PutU16(2);
  payload.PutBool(true);
  payload.PutU64(9);
  payload.PutVarint(0);
  serialize::Decoder dec(payload.data());
  server::WalBatchAdmitted out;
  EXPECT_EQ(server::WalBatchAdmitted::DecodeFrom(&dec, &out).code(),
            StatusCode::kCorruption);
}

// -- WAL stream parsing ------------------------------------------------------

TEST(PersistGoldenTest, DecodeWalParsesConcatenatedRecords) {
  serialize::Encoder completed;
  server::WalCloneCompleted{5}.EncodeTo(&completed);
  serialize::Encoder terminated;
  server::WalQueryTerminated{"k"}.EncodeTo(&terminated);

  std::vector<uint8_t> wal =
      EncodeWalRecord(WalRecordType::kCloneCompleted, completed.data());
  const std::vector<uint8_t> second =
      EncodeWalRecord(WalRecordType::kQueryTerminated, terminated.data());
  wal.insert(wal.end(), second.begin(), second.end());

  const server::WalReadResult result = server::DecodeWal(wal);
  ASSERT_EQ(result.records.size(), 2u);
  EXPECT_EQ(result.records[0].type, WalRecordType::kCloneCompleted);
  EXPECT_EQ(result.records[1].type, WalRecordType::kQueryTerminated);
  EXPECT_EQ(result.discarded_records, 0u);
  EXPECT_EQ(result.discarded_bytes, 0u);
}

TEST(PersistGoldenTest, DecodeWalStopsAtTornTail) {
  serialize::Encoder completed;
  server::WalCloneCompleted{5}.EncodeTo(&completed);
  std::vector<uint8_t> wal =
      EncodeWalRecord(WalRecordType::kCloneCompleted, completed.data());
  const size_t intact = wal.size();
  serialize::Encoder terminated;
  server::WalQueryTerminated{"k"}.EncodeTo(&terminated);
  const std::vector<uint8_t> second =
      EncodeWalRecord(WalRecordType::kQueryTerminated, terminated.data());
  wal.insert(wal.end(), second.begin(), second.end());
  wal.resize(wal.size() - 1);  // tear one byte off the final record

  const server::WalReadResult result = server::DecodeWal(wal);
  ASSERT_EQ(result.records.size(), 1u);
  EXPECT_EQ(result.records[0].type, WalRecordType::kCloneCompleted);
  EXPECT_EQ(result.discarded_records, 1u);
  EXPECT_EQ(result.discarded_bytes, wal.size() - intact);
}

TEST(PersistGoldenTest, DecodeWalRejectsCorruptPayload) {
  serialize::Encoder completed;
  server::WalCloneCompleted{5}.EncodeTo(&completed);
  std::vector<uint8_t> wal =
      EncodeWalRecord(WalRecordType::kCloneCompleted, completed.data());
  wal.back() ^= 0xFF;  // bit-rot inside the payload: checksum must catch it

  const server::WalReadResult result = server::DecodeWal(wal);
  EXPECT_TRUE(result.records.empty());
  EXPECT_EQ(result.discarded_records, 1u);
  EXPECT_EQ(result.discarded_bytes, wal.size());
}

TEST(PersistGoldenTest, DecodeWalRejectsUnknownRecordType) {
  serialize::Encoder completed;
  server::WalCloneCompleted{5}.EncodeTo(&completed);
  std::vector<uint8_t> wal =
      EncodeWalRecord(WalRecordType::kCloneCompleted, completed.data());
  wal[0] = 0x77;  // not a declared WalRecordType

  const server::WalReadResult result = server::DecodeWal(wal);
  EXPECT_TRUE(result.records.empty());
  EXPECT_EQ(result.discarded_records, 1u);
}

// -- Snapshot images ---------------------------------------------------------

DurableServerState CanonicalState() {
  DurableServerState state;
  state.last_wal_id = 3;
  state.terminated_queries = {"k"};
  state.seen_transfers.emplace_back(net::Endpoint{"h", 1}, 7);
  DurablePendingClone pending;
  pending.record_id = 2;
  pending.from = net::Endpoint{"s", 2};
  pending.tracked = true;
  pending.seq = 9;
  pending.clone = MinimalClone();
  state.pending_clones.push_back(std::move(pending));
  return state;
}

// Frozen full-image hex of CanonicalState(): header then body.
std::string CanonicalSnapshotHex() {
  return std::string("534e4150"          /* magic "SNAP" (LE) */
                     "01"                /* version */
                     "5a000000"          /* body length 90+clone */
                     "1ddd5820")         /* body crc */
         + "0300000000000000"            /* last_wal_id 3 */
           "00"                          /* log table: 0 groups */
           "01" "016b"                   /* terminated ["k"] */
           "01" "0168" "0100" "07"       /* seen [("h",1) seq 7] */
           "01"                          /* 1 pending clone: */
           "0200000000000000"            /*   record_id 2 */
           "0173" "0200"                 /*   from ("s",2) */
           "01"                          /*   tracked */
           "0900000000000000"            /*   seq 9 */
         + kMinimalCloneHex;
}

TEST(PersistGoldenTest, SnapshotImageIsStable) {
  EXPECT_EQ(Hex(EncodeSnapshot(CanonicalState())), CanonicalSnapshotHex());
}

TEST(PersistGoldenTest, SnapshotRoundTrip) {
  const std::vector<uint8_t> bytes = EncodeSnapshot(CanonicalState());
  DurableServerState out;
  ASSERT_TRUE(DecodeSnapshot(bytes, &out).ok());
  EXPECT_EQ(out.last_wal_id, 3u);
  EXPECT_EQ(out.terminated_queries, std::vector<std::string>{"k"});
  ASSERT_EQ(out.seen_transfers.size(), 1u);
  EXPECT_EQ(out.seen_transfers[0].first, (net::Endpoint{"h", 1}));
  EXPECT_EQ(out.seen_transfers[0].second, 7u);
  ASSERT_EQ(out.pending_clones.size(), 1u);
  EXPECT_EQ(out.pending_clones[0].record_id, 2u);
  EXPECT_TRUE(out.pending_clones[0].tracked);
  EXPECT_EQ(out.pending_clones[0].clone.dest_urls,
            std::vector<std::string>{"http://a/"});
}

TEST(PersistGoldenTest, SnapshotVersionBumpIsExplicitlyRejected) {
  // There is exactly one snapshot version so far, so there is no migration
  // to apply: an image stamped with a future version must be *rejected by
  // name*, never silently misread. When kSnapshotVersion is bumped, this
  // test is the reminder to either migrate version-1 images or keep
  // rejecting them explicitly.
  std::vector<uint8_t> bytes = EncodeSnapshot(CanonicalState());
  bytes[4] = server::kSnapshotVersion + 1;  // the version byte
  DurableServerState out;
  const Status status = DecodeSnapshot(bytes, &out);
  ASSERT_TRUE((status.code() == StatusCode::kCorruption)) << status.ToString();
  EXPECT_NE(status.ToString().find("unsupported snapshot version 2"),
            std::string::npos)
      << status.ToString();
  EXPECT_NE(status.ToString().find("expected 1"), std::string::npos);
}

TEST(PersistGoldenTest, SnapshotChecksumMismatchIsRejected) {
  std::vector<uint8_t> bytes = EncodeSnapshot(CanonicalState());
  bytes.back() ^= 0x01;  // flip one body bit
  DurableServerState out;
  const Status status = DecodeSnapshot(bytes, &out);
  ASSERT_TRUE((status.code() == StatusCode::kCorruption));
  EXPECT_NE(status.ToString().find("checksum"), std::string::npos);
}

TEST(PersistGoldenTest, SnapshotTornTailIsRejected) {
  std::vector<uint8_t> bytes = EncodeSnapshot(CanonicalState());
  bytes.resize(bytes.size() - 5);
  DurableServerState out;
  EXPECT_TRUE(DecodeSnapshot(bytes, &out).code() == StatusCode::kCorruption);
}

TEST(PersistGoldenTest, SnapshotBadMagicIsRejected) {
  std::vector<uint8_t> bytes = EncodeSnapshot(CanonicalState());
  bytes[0] ^= 0xFF;
  DurableServerState out;
  EXPECT_TRUE(DecodeSnapshot(bytes, &out).code() == StatusCode::kCorruption);
}

TEST(PersistGoldenTest, EmptyStateSnapshotRoundTrips) {
  const std::vector<uint8_t> bytes = EncodeSnapshot(DurableServerState());
  DurableServerState out;
  ASSERT_TRUE(DecodeSnapshot(bytes, &out).ok());
  EXPECT_EQ(out.last_wal_id, 0u);
  EXPECT_TRUE(out.terminated_queries.empty());
  EXPECT_TRUE(out.seen_transfers.empty());
  EXPECT_TRUE(out.pending_clones.empty());
}

// -- Memory backend crash semantics ------------------------------------------

TEST(PersistGoldenTest, MemoryBackendLosesUnsyncedBytesOnCrash) {
  MemoryPersistBackend backend;
  ASSERT_TRUE(backend.AppendWal({1, 2, 3}).ok());
  ASSERT_TRUE(backend.SyncWal().ok());
  ASSERT_TRUE(backend.AppendWal({4, 5}).ok());  // never synced
  EXPECT_EQ(backend.WalBytes(), 5u);

  backend.OnCrash();
  auto wal = backend.ReadWal();
  ASSERT_TRUE(wal.ok());
  EXPECT_EQ(Hex(*wal), "010203");
  EXPECT_EQ(backend.stats().unsynced_bytes_lost, 2u);
}

TEST(PersistGoldenTest, MemoryBackendTornRulesAreSeededAndDetected) {
  PersistFaultRules rules;
  rules.seed = 42;
  rules.torn_wal_tail_prob = 1.0;
  rules.torn_snapshot_prob = 1.0;
  MemoryPersistBackend backend(rules);

  const std::vector<uint8_t> snapshot = EncodeSnapshot(CanonicalState());
  ASSERT_TRUE(backend.WriteSnapshot(snapshot).ok());
  serialize::Encoder completed;
  server::WalCloneCompleted{5}.EncodeTo(&completed);
  ASSERT_TRUE(
      backend
          .AppendWal(EncodeWalRecord(WalRecordType::kCloneCompleted,
                                     completed.data()))
          .ok());
  ASSERT_TRUE(backend.SyncWal().ok());

  backend.OnCrash();
  EXPECT_EQ(backend.stats().torn_wal_tails, 1u);
  EXPECT_EQ(backend.stats().torn_snapshots, 1u);

  // Both tears are detected, not misread: the torn snapshot fails its
  // checksum and the torn WAL parses to zero records plus a discard count.
  auto torn_snapshot = backend.ReadSnapshot();
  ASSERT_TRUE(torn_snapshot.ok());
  DurableServerState out;
  EXPECT_TRUE(DecodeSnapshot(*torn_snapshot, &out).code() == StatusCode::kCorruption);
  auto torn_wal = backend.ReadWal();
  ASSERT_TRUE(torn_wal.ok());
  const server::WalReadResult result = server::DecodeWal(*torn_wal);
  EXPECT_TRUE(result.records.empty());
  EXPECT_EQ(result.discarded_records, 1u);
}

TEST(PersistGoldenTest, MemoryBackendShortReadIsDetected) {
  PersistFaultRules rules;
  rules.seed = 7;
  rules.short_read_prob = 1.0;
  MemoryPersistBackend backend(rules);
  ASSERT_TRUE(backend.WriteSnapshot(EncodeSnapshot(CanonicalState())).ok());

  auto bytes = backend.ReadSnapshot();
  ASSERT_TRUE(bytes.ok());
  DurableServerState out;
  EXPECT_TRUE(DecodeSnapshot(*bytes, &out).code() == StatusCode::kCorruption);
  EXPECT_EQ(backend.stats().short_reads, 1u);
}

TEST(PersistGoldenTest, MemoryBackendReadSnapshotIsNotFoundWhenEmpty) {
  MemoryPersistBackend backend;
  EXPECT_TRUE(backend.ReadSnapshot().status().code() == StatusCode::kNotFound);
}

// -- File backend ------------------------------------------------------------

TEST(PersistGoldenTest, FileBackendStateOutlivesTheInstance) {
  const std::string dir = ::testing::TempDir() + "webdis_persist_golden";
  std::remove((dir + "/snapshot.bin").c_str());
  std::remove((dir + "/wal.bin").c_str());
  ASSERT_EQ(std::system(("mkdir -p " + dir).c_str()), 0);

  const std::vector<uint8_t> snapshot = EncodeSnapshot(CanonicalState());
  serialize::Encoder completed;
  server::WalCloneCompleted{5}.EncodeTo(&completed);
  const std::vector<uint8_t> record =
      EncodeWalRecord(WalRecordType::kCloneCompleted, completed.data());
  {
    server::FilePersistBackend backend(dir);
    ASSERT_TRUE(backend.WriteSnapshot(snapshot).ok());
    ASSERT_TRUE(backend.AppendWal(record).ok());
    ASSERT_TRUE(backend.SyncWal().ok());
    EXPECT_EQ(backend.WalBytes(), record.size());
  }
  {
    // A fresh instance over the same directory sees the durable state —
    // that is the point of the file backend.
    server::FilePersistBackend backend(dir);
    EXPECT_EQ(backend.WalBytes(), record.size());
    auto read_snapshot = backend.ReadSnapshot();
    ASSERT_TRUE(read_snapshot.ok());
    EXPECT_EQ(Hex(*read_snapshot), CanonicalSnapshotHex());
    auto wal = backend.ReadWal();
    ASSERT_TRUE(wal.ok());
    EXPECT_EQ(Hex(*wal), Hex(record));
    ASSERT_TRUE(backend.TruncateWal().ok());
    EXPECT_EQ(backend.WalBytes(), 0u);
  }
  {
    server::FilePersistBackend backend(dir);
    auto wal = backend.ReadWal();
    ASSERT_TRUE(wal.ok());
    EXPECT_TRUE(wal->empty());
  }
}

TEST(PersistGoldenTest, FileBackendUnsyncedAppendsAreLostOnCrash) {
  const std::string dir = ::testing::TempDir() + "webdis_persist_crash";
  std::remove((dir + "/snapshot.bin").c_str());
  std::remove((dir + "/wal.bin").c_str());
  ASSERT_EQ(std::system(("mkdir -p " + dir).c_str()), 0);

  server::FilePersistBackend backend(dir);
  ASSERT_TRUE(backend.AppendWal({1, 2, 3}).ok());
  backend.OnCrash();
  auto wal = backend.ReadWal();
  ASSERT_TRUE(wal.ok());
  EXPECT_TRUE(wal->empty());
}

}  // namespace
}  // namespace webdis
