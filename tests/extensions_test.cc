// Tests for the implemented extensions: approximate queries (row budget),
// the ack-tree termination baseline (Related Work [4]), and graceful
// recovery (§7.1).
#include <gtest/gtest.h>

#include <set>

#include "common/strings.h"
#include "core/engine.h"
#include "serialize/encoder.h"
#include "web/synth.h"
#include "web/topologies.h"

namespace webdis {
namespace {

std::set<std::string> RowKeys(
    const std::vector<relational::ResultSet>& results) {
  std::set<std::string> keys;
  for (const relational::ResultSet& rs : results) {
    for (const relational::Tuple& row : rs.rows) {
      std::string key = Join(rs.column_labels, ",") + ":";
      for (const relational::Value& v : row) key += v.ToString() + "|";
      keys.insert(std::move(key));
    }
  }
  return keys;
}

// -- Approximate queries (row budget) ----------------------------------------

TEST(RowLimitTest, StopsEarlyWithTruncatedFlag) {
  web::SynthWebOptions web_options;
  web_options.seed = 8;
  web_options.num_sites = 8;
  web_options.docs_per_site = 10;
  web_options.title_keyword_prob = 0.8;  // many matches
  const web::WebGraph web = web::GenerateSynthWeb(web_options);
  const std::string disql =
      "select d.url from document d such that \"" + web::SynthUrl(0, 0) +
      "\" (L|G)*4 d where d.title contains \"alpha\"";

  core::Engine exact_engine(&web);
  auto exact = exact_engine.Run(disql);
  ASSERT_TRUE(exact.ok());
  ASSERT_GT(exact->TotalRows(), 3u);

  core::EngineOptions options;
  options.client.row_limit = 3;
  core::Engine engine(&web, options);
  auto compiled = disql::CompileDisql(disql);
  ASSERT_TRUE(compiled.ok());
  auto id = engine.Submit(compiled.value());
  ASSERT_TRUE(id.ok());
  engine.network().RunUntilIdle();
  const client::UserSite::QueryRun* run = engine.user_site().Find(id.value());
  EXPECT_TRUE(run->completed);
  EXPECT_TRUE(run->truncated);
  size_t rows = 0;
  for (const relational::ResultSet& rs : run->results) rows += rs.rows.size();
  EXPECT_GE(rows, 3u);
  EXPECT_LT(rows, exact->TotalRows());
  // Every approximate row is a genuine row of the exact answer.
  for (const std::string& key : RowKeys(run->results)) {
    EXPECT_TRUE(RowKeys(exact->results).contains(key)) << key;
  }
  // The early close cut off in-flight work via passive termination.
  EXPECT_GT(engine.network().connection_refused_count() +
                engine.network().dropped_count(),
            0u);
}

TEST(RowLimitTest, LimitAboveAnswerIsExact) {
  web::CampusScenario scenario = web::BuildCampusScenario();
  core::EngineOptions options;
  options.client.row_limit = 1000;
  core::Engine engine(&scenario.web, options);
  auto outcome = engine.Run(scenario.disql);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->completed);
  const client::UserSite::QueryRun* run =
      engine.user_site().Find(outcome->id);
  EXPECT_FALSE(run->truncated);
  EXPECT_EQ(outcome->TotalRows(), 4u);  // 1 labs row + 3 convener rows
}

// -- Ack-tree termination (the Related Work [4] baseline) ---------------------

TEST(AckTreeTest, DetectsCompletionOnCampusWeb) {
  web::CampusScenario scenario = web::BuildCampusScenario();
  core::EngineOptions options;
  options.client.ack_tree_termination = true;
  core::Engine engine(&scenario.web, options);
  auto outcome = engine.Run(scenario.disql);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->completed);
  EXPECT_EQ(outcome->client_stats.root_acks_received, 1u);
  EXPECT_GT(outcome->server_stats.acks_sent, 0u);
  // Same answers as the CHT design.
  core::Engine reference(&scenario.web);
  auto expected = reference.Run(scenario.disql);
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(RowKeys(outcome->results), RowKeys(expected->results));
}

TEST(AckTreeTest, MatchesChtOnRandomWebs) {
  for (uint64_t seed : {3u, 14u, 60u}) {
    web::SynthWebOptions web_options;
    web_options.seed = seed;
    web_options.num_sites = 6;
    web_options.docs_per_site = 7;
    const web::WebGraph web = web::GenerateSynthWeb(web_options);
    const std::string disql =
        "select d.url from document d such that \"" + web::SynthUrl(0, 0) +
        "\" (L|G)*3 d where d.title contains \"alpha\"";

    core::EngineOptions ack_options;
    ack_options.client.ack_tree_termination = true;
    core::Engine ack_engine(&web, ack_options);
    auto ack = ack_engine.Run(disql);
    ASSERT_TRUE(ack.ok());
    EXPECT_TRUE(ack->completed) << seed;

    core::Engine cht_engine(&web);
    auto cht = cht_engine.Run(disql);
    ASSERT_TRUE(cht.ok());
    EXPECT_EQ(RowKeys(ack->results), RowKeys(cht->results)) << seed;

    // The structural trade: acks add one message per clone, the CHT adds
    // entry bytes to reports instead.
    EXPECT_GT(ack_engine.network()
                  .traffic_for(net::MessageType::kAck)
                  .messages,
              0u)
        << seed;
    EXPECT_EQ(
        cht_engine.network().traffic_for(net::MessageType::kAck).messages,
        0u)
        << seed;
    EXPECT_GT(ack->traffic.messages, cht->traffic.messages) << seed;
  }
}

TEST(AckTreeTest, CompletionRobustUnderJitter) {
  web::SynthWebOptions web_options;
  web_options.seed = 17;
  web_options.num_sites = 5;
  web_options.docs_per_site = 8;
  const web::WebGraph web = web::GenerateSynthWeb(web_options);
  const std::string disql =
      "select d.url from document d such that \"" + web::SynthUrl(0, 0) +
      "\" (L|G)*3 d where d.title contains \"alpha\"";
  for (uint64_t jitter_seed = 1; jitter_seed <= 5; ++jitter_seed) {
    core::EngineOptions options;
    options.client.ack_tree_termination = true;
    options.network.latency_jitter = 100 * kMillisecond;
    options.network.jitter_seed = jitter_seed;
    core::Engine engine(&web, options);
    auto outcome = engine.Run(disql);
    ASSERT_TRUE(outcome.ok());
    EXPECT_TRUE(outcome->completed) << jitter_seed;
  }
}

TEST(AckTreeTest, LostAckBlocksCompletionButNotResults) {
  web::CampusScenario scenario = web::BuildCampusScenario();
  core::EngineOptions options;
  options.client.ack_tree_termination = true;
  core::Engine engine(&scenario.web, options);
  int dropped = 0;
  engine.network().SetDropFilter(
      [&dropped](const net::Endpoint&, const net::Endpoint&,
                 net::MessageType type) {
        if (type == net::MessageType::kAck && dropped == 0) {
          ++dropped;
          return true;
        }
        return false;
      });
  auto compiled = disql::CompileDisql(scenario.disql);
  ASSERT_TRUE(compiled.ok());
  auto id = engine.Submit(compiled.value());
  ASSERT_TRUE(id.ok());
  engine.network().RunUntilIdle();
  const client::UserSite::QueryRun* run = engine.user_site().Find(id.value());
  EXPECT_FALSE(run->completed);        // safety preserved
  EXPECT_FALSE(run->results.empty());  // results still arrived
}

TEST(AckTreeTest, WebQueryAckFieldsRoundTrip) {
  auto compiled = disql::CompileDisql(
      "select d.url from document d such that \"http://a/\" L d");
  ASSERT_TRUE(compiled.ok());
  query::WebQuery wq = compiled->web_query.Clone();
  wq.dest_urls = {"http://a/"};
  wq.ack_mode = true;
  wq.ack_parent_host = "parent.example";
  wq.ack_parent_port = 7000;
  wq.ack_token = 0xDEADBEEFCAFEULL;
  serialize::Encoder enc;
  wq.EncodeTo(&enc);
  serialize::Decoder dec(enc.data());
  query::WebQuery out;
  ASSERT_TRUE(query::WebQuery::DecodeFrom(&dec, &out).ok());
  EXPECT_TRUE(out.ack_mode);
  EXPECT_EQ(out.ack_parent_host, "parent.example");
  EXPECT_EQ(out.ack_parent_port, 7000);
  EXPECT_EQ(out.ack_token, 0xDEADBEEFCAFEULL);
}

}  // namespace
}  // namespace webdis
