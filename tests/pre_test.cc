#include <gtest/gtest.h>

#include <set>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "pre/log_equivalence.h"
#include "pre/pre.h"
#include "serialize/encoder.h"

namespace webdis::pre {
namespace {

using html::LinkType;

constexpr LinkType I = LinkType::kInterior;
constexpr LinkType L = LinkType::kLocal;
constexpr LinkType G = LinkType::kGlobal;

Pre P(const std::string& text) {
  auto parsed = Pre::Parse(text);
  EXPECT_TRUE(parsed.ok()) << text << ": " << parsed.status().ToString();
  return parsed.value();
}

// -- Parsing ------------------------------------------------------------------

TEST(PreParseTest, SingleSymbols) {
  EXPECT_TRUE(P("L").Matches({L}));
  EXPECT_TRUE(P("G").Matches({G}));
  EXPECT_TRUE(P("I").Matches({I}));
  EXPECT_TRUE(P("N").ContainsNull());
}

TEST(PreParseTest, PaperExamples) {
  // "N | G·(L*4)" from Section 2.
  const Pre p = P("N | G.(L*4)");
  EXPECT_TRUE(p.ContainsNull());
  EXPECT_TRUE(p.Matches({G}));
  EXPECT_TRUE(p.Matches({G, L, L, L, L}));
  EXPECT_FALSE(p.Matches({G, L, L, L, L, L}));
  EXPECT_FALSE(p.Matches({L}));
}

TEST(PreParseTest, MiddleDotAccepted) {
  // UTF-8 middle dot, exactly as the paper writes PREs.
  const Pre p = P("G\xC2\xB7(G|L)");
  EXPECT_TRUE(p.Matches({G, G}));
  EXPECT_TRUE(p.Matches({G, L}));
  EXPECT_FALSE(p.Matches({G}));
}

TEST(PreParseTest, UnboundedStar) {
  const Pre p = P("L*");
  EXPECT_TRUE(p.ContainsNull());
  EXPECT_TRUE(p.Matches({L, L, L, L, L, L, L, L}));
  EXPECT_FALSE(p.Matches({L, G}));
}

TEST(PreParseTest, ZeroBoundIsEpsilon) {
  const Pre p = P("L*0");
  EXPECT_TRUE(p.ContainsNull());
  EXPECT_FALSE(p.Matches({L}));
}

TEST(PreParseTest, Whitespace) {
  EXPECT_TRUE(P("  G . ( G | L )  ").Matches({G, L}));
}

TEST(PreParseTest, Errors) {
  EXPECT_FALSE(Pre::Parse("").ok());
  EXPECT_FALSE(Pre::Parse("X").ok());
  EXPECT_FALSE(Pre::Parse("G.(L").ok());
  EXPECT_FALSE(Pre::Parse("G L").ok());  // juxtaposition is not concat
  EXPECT_FALSE(Pre::Parse("|G").ok());
  EXPECT_FALSE(Pre::Parse("G.").ok());
  EXPECT_FALSE(Pre::Parse("G)").ok());
}

TEST(PreParseTest, ToStringRoundTrip) {
  for (const char* text :
       {"L", "N", "G.(G | L)", "N | G.L*4", "L*", "(L | G)*3.I",
        "G.L*1", "(I | L | G)*2"}) {
    const Pre p = P(text);
    const Pre reparsed = P(p.ToString());
    EXPECT_TRUE(p.Equals(reparsed)) << text << " -> " << p.ToString();
  }
}

// -- Nullability and first links -------------------------------------------------

TEST(PreTest, ContainsNull) {
  EXPECT_TRUE(Pre::Empty().ContainsNull());
  EXPECT_FALSE(Pre::Never().ContainsNull());
  EXPECT_FALSE(P("L").ContainsNull());
  EXPECT_TRUE(P("L*3").ContainsNull());
  EXPECT_TRUE(P("N").ContainsNull());
  EXPECT_TRUE(P("N | G").ContainsNull());
  EXPECT_FALSE(P("G.L*3").ContainsNull());
  EXPECT_TRUE(P("L*1.G*1").ContainsNull());
}

TEST(PreTest, FirstLinks) {
  const auto links_of = [](const std::string& text) {
    std::set<LinkType> out;
    for (LinkType t : P(text).FirstLinks()) out.insert(t);
    return out;
  };
  EXPECT_EQ(links_of("L"), (std::set<LinkType>{L}));
  EXPECT_EQ(links_of("G.(G|L)"), (std::set<LinkType>{G}));
  EXPECT_EQ(links_of("G|L"), (std::set<LinkType>{G, L}));
  EXPECT_EQ(links_of("L*2.G"), (std::set<LinkType>{L, G}));
  EXPECT_EQ(links_of("N"), (std::set<LinkType>{}));
  EXPECT_EQ(links_of("(I|L|G)*1"), (std::set<LinkType>{I, L, G}));
}

// -- Derivatives -------------------------------------------------------------------

TEST(PreDeriveTest, SimpleCases) {
  EXPECT_TRUE(P("L").Derive(L).ContainsNull());
  EXPECT_TRUE(P("L").Derive(G).IsNever());
  EXPECT_TRUE(P("G.L").Derive(G).Equals(P("L")));
  EXPECT_TRUE(P("L*3").Derive(L).Equals(P("L*2")));
  EXPECT_TRUE(P("L*1").Derive(L).ContainsNull());
  EXPECT_TRUE(P("L*").Derive(L).Equals(P("L*")));
  EXPECT_TRUE(P("G|L").Derive(G).ContainsNull());
}

TEST(PreDeriveTest, ConcatThroughNullableHead) {
  // d_G(L*2.G) must reach the G after zero L's.
  const Pre p = P("L*2.G");
  EXPECT_TRUE(p.Derive(G).ContainsNull());
  EXPECT_TRUE(p.Derive(L).Equals(P("L*1.G")));
}

TEST(PreDeriveTest, NullLinkHasNoDerivative) {
  EXPECT_TRUE(P("N").Derive(L).IsNever());
  EXPECT_TRUE(P("N").Derive(G).IsNever());
}

TEST(PreDeriveTest, DeadBranchesPrune) {
  const Pre p = P("(G.L) | (L.G)");
  const Pre after_g = p.Derive(G);
  EXPECT_TRUE(after_g.Equals(P("L")));
}

/// Property: for every path in EnumeratePaths, Matches() agrees; and for
/// paths NOT enumerated (up to the length bound), Matches() is false.
class PrePropertyTest : public ::testing::TestWithParam<const char*> {};

TEST_P(PrePropertyTest, EnumerationAgreesWithMatching) {
  const Pre p = P(GetParam());
  constexpr size_t kMaxLen = 4;
  const auto paths = p.EnumeratePaths(kMaxLen);
  std::set<std::vector<LinkType>> in_language(paths.begin(), paths.end());
  // Exhaustively try all 3^0..3^4 = 121 paths.
  std::vector<std::vector<LinkType>> all{{}};
  for (size_t len = 1; len <= kMaxLen; ++len) {
    std::vector<std::vector<LinkType>> next;
    for (const auto& prefix : all) {
      if (prefix.size() != len - 1) continue;
      for (LinkType t : {I, L, G}) {
        auto extended = prefix;
        extended.push_back(t);
        next.push_back(extended);
      }
    }
    all.insert(all.end(), next.begin(), next.end());
  }
  for (const auto& path : all) {
    EXPECT_EQ(p.Matches(path), in_language.contains(path))
        << GetParam() << " path len " << path.size();
  }
}

TEST_P(PrePropertyTest, DerivativeConsistentWithMatching) {
  // Property: p matches (t . rest) iff Derive(t) matches rest.
  const Pre p = P(GetParam());
  for (LinkType t : {I, L, G}) {
    const Pre d = p.Derive(t);
    for (const auto& rest : d.EnumeratePaths(3)) {
      std::vector<LinkType> full;
      full.reserve(rest.size() + 1);
      full.push_back(t);
      for (LinkType r : rest) full.push_back(r);
      EXPECT_TRUE(p.Matches(full)) << GetParam();
    }
  }
}

TEST_P(PrePropertyTest, SerializationRoundTrip) {
  const Pre p = P(GetParam());
  serialize::Encoder enc;
  p.EncodeTo(&enc);
  serialize::Decoder dec(enc.data());
  auto decoded = Pre::DecodeFrom(&dec);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(p.Equals(decoded.value()));
  EXPECT_TRUE(dec.AtEnd());
}

INSTANTIATE_TEST_SUITE_P(
    Pres, PrePropertyTest,
    ::testing::Values("L", "N", "G.(G | L)", "N | G.L*2", "L*", "L*3",
                      "(L | G)*2", "G.L*1", "(I | L)*2.G", "L*2.G",
                      "(G|L).(G|L)", "I.I", "N | N", "(L*1)*2"));

// -- Canonical equality ------------------------------------------------------------

TEST(PreEqualsTest, AlternationOrderInsensitive) {
  EXPECT_TRUE(P("G | L").Equals(P("L | G")));
  EXPECT_TRUE(P("N | G.L").Equals(P("G.L | N")));
  EXPECT_FALSE(P("G.L").Equals(P("L.G")));
}

TEST(PreEqualsTest, DuplicateAltBranchesCollapse) {
  EXPECT_TRUE(P("L | L").Equals(P("L")));
}

TEST(PreEqualsTest, EpsilonConcatIdentity) {
  EXPECT_TRUE(P("N.L").Equals(P("L")));
  EXPECT_TRUE(P("L.N").Equals(P("L")));
}

// -- Star prefix / multiple rewrite -------------------------------------------------

TEST(StarPrefixTest, DecomposesBareRepeat) {
  StarPrefix sp;
  ASSERT_TRUE(P("L*4").DecomposeStarPrefix(&sp));
  EXPECT_EQ(sp.link, L);
  EXPECT_EQ(sp.bound, 4u);
  EXPECT_FALSE(sp.unbounded);
  EXPECT_TRUE(sp.rest.IsEmpty());
}

TEST(StarPrefixTest, DecomposesRepeatConcat) {
  StarPrefix sp;
  ASSERT_TRUE(P("L*2.G").DecomposeStarPrefix(&sp));
  EXPECT_EQ(sp.link, L);
  EXPECT_EQ(sp.bound, 2u);
  EXPECT_TRUE(sp.rest.Equals(P("G")));
}

TEST(StarPrefixTest, DecomposesUnbounded) {
  StarPrefix sp;
  ASSERT_TRUE(P("L*.G").DecomposeStarPrefix(&sp));
  EXPECT_TRUE(sp.unbounded);
}

TEST(StarPrefixTest, RejectsNonStarShapes) {
  StarPrefix sp;
  EXPECT_FALSE(P("L").DecomposeStarPrefix(&sp));
  EXPECT_FALSE(P("G.L*2").DecomposeStarPrefix(&sp));
  EXPECT_FALSE(P("(G|L)*2").DecomposeStarPrefix(&sp));
  EXPECT_FALSE(P("L | G").DecomposeStarPrefix(&sp));
}

TEST(MultipleRewriteTest, RewritesAsPaperSpecifies) {
  // A*m·B -> A·A*(m-1)·B
  EXPECT_TRUE(P("L*3.G").MultipleRewriteOnce().Equals(P("L.L*2.G")));
  EXPECT_TRUE(P("L*1.G").MultipleRewriteOnce().Equals(P("L.G")));
  EXPECT_TRUE(P("L*2").MultipleRewriteOnce().Equals(P("L.L*1")));
  // Unbounded stays unbounded.
  EXPECT_TRUE(P("L*.G").MultipleRewriteOnce().Equals(P("L.L*.G")));
}

TEST(MultipleRewriteTest, RewriteIsNeverNullable) {
  // The rewrite forces the node to act as a PureRouter (Section 3.1.1).
  for (const char* text : {"L*1.G", "L*5.G", "L*2", "L*.G"}) {
    EXPECT_FALSE(P(text).MultipleRewriteOnce().ContainsNull()) << text;
  }
}

TEST(MultipleRewriteTest, LanguageDifferenceOnly) {
  // L(rewrite) = L(original) minus the paths of length-0 A prefix; union
  // with the logged subset language equals the original.
  const Pre original = P("L*3.G");
  const Pre rewrite = original.MultipleRewriteOnce();
  for (const auto& path : original.EnumeratePaths(4)) {
    const bool starts_with_l = !path.empty() && path[0] == L;
    EXPECT_EQ(rewrite.Matches(path), starts_with_l);
  }
}

// -- Log equivalence (Section 3.1.1 rules) -------------------------------------------

TEST(LogEquivalenceTest, IdenticalIsDuplicate) {
  const LogDecision d = ComparePreForLog(P("G.L*1"), P("G.L*1"));
  EXPECT_EQ(d.comparison, LogComparison::kDuplicate);
}

TEST(LogEquivalenceTest, AlternationOrderStillDuplicate) {
  const LogDecision d = ComparePreForLog(P("G | L"), P("L | G"));
  EXPECT_EQ(d.comparison, LogComparison::kDuplicate);
}

TEST(LogEquivalenceTest, SubsetBoundIsDuplicate) {
  // incoming L*1·G vs logged L*2·G: all paths covered.
  const LogDecision d = ComparePreForLog(P("L*1.G"), P("L*2.G"));
  EXPECT_EQ(d.comparison, LogComparison::kDuplicate);
}

TEST(LogEquivalenceTest, SupersetBoundRewrites) {
  // The paper's own example: logged L*2·G, incoming L*4·G.
  const LogDecision d = ComparePreForLog(P("L*4.G"), P("L*2.G"));
  EXPECT_EQ(d.comparison, LogComparison::kSupersetRewrite);
  ASSERT_TRUE(d.rewritten.has_value());
  EXPECT_TRUE(d.rewritten->Equals(P("L.L*3.G")));
}

TEST(LogEquivalenceTest, UnboundedLoggedCoversEverything) {
  EXPECT_EQ(ComparePreForLog(P("L*7.G"), P("L*.G")).comparison,
            LogComparison::kDuplicate);
}

TEST(LogEquivalenceTest, UnboundedIncomingIsSuperset) {
  const LogDecision d = ComparePreForLog(P("L*.G"), P("L*3.G"));
  EXPECT_EQ(d.comparison, LogComparison::kSupersetRewrite);
  EXPECT_TRUE(d.rewritten->Equals(P("L.L*.G")));
}

TEST(LogEquivalenceTest, DifferentLinkOrRestUnrelated) {
  EXPECT_EQ(ComparePreForLog(P("G*2.L"), P("L*2.L")).comparison,
            LogComparison::kUnrelated);
  EXPECT_EQ(ComparePreForLog(P("L*2.G"), P("L*3.I")).comparison,
            LogComparison::kUnrelated);
  EXPECT_EQ(ComparePreForLog(P("L"), P("G")).comparison,
            LogComparison::kUnrelated);
}

/// Parameterized grid over (m, n) pairs — the paper's case analysis.
class BoundGridTest
    : public ::testing::TestWithParam<std::pair<uint32_t, uint32_t>> {};

TEST_P(BoundGridTest, MatchesPaperRule) {
  const auto [m, n] = GetParam();
  const Pre incoming = P("L*" + std::to_string(m) + ".G");
  const Pre logged = P("L*" + std::to_string(n) + ".G");
  const LogDecision d = ComparePreForLog(incoming, logged);
  if (m <= n) {
    EXPECT_EQ(d.comparison, LogComparison::kDuplicate) << m << "," << n;
  } else {
    EXPECT_EQ(d.comparison, LogComparison::kSupersetRewrite) << m << "," << n;
    // The rewrite consumes exactly one leading L.
    EXPECT_TRUE(d.rewritten->Derive(L).Equals(
        P("L*" + std::to_string(m - 1) + ".G")));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BoundGridTest,
    ::testing::Values(std::make_pair(1u, 1u), std::make_pair(1u, 2u),
                      std::make_pair(2u, 1u), std::make_pair(3u, 3u),
                      std::make_pair(5u, 2u), std::make_pair(2u, 5u),
                      std::make_pair(6u, 5u), std::make_pair(1u, 6u)));

// -- EnumeratePaths ---------------------------------------------------------------

TEST(EnumeratePathsTest, ShortlexOrderAndLimit) {
  const Pre p = P("L*");
  const auto paths = p.EnumeratePaths(5);
  ASSERT_EQ(paths.size(), 6u);  // lengths 0..5
  for (size_t i = 0; i < paths.size(); ++i) {
    EXPECT_EQ(paths[i].size(), i);
  }
  EXPECT_EQ(p.EnumeratePaths(100, 10).size(), 10u);  // limit respected
}

TEST(EnumeratePathsTest, NeverHasNoPaths) {
  EXPECT_TRUE(Pre::Never().EnumeratePaths(3).empty());
}

// -- Randomized structural properties ----------------------------------------

/// Generates a random PRE AST of bounded depth.
Pre RandomPre(Rng* rng, int depth) {
  const uint64_t kind = depth <= 0 ? 0 : rng->Uniform(10);
  if (kind < 4) {  // link symbol
    const LinkType links[] = {I, L, G, LinkType::kNull};
    return Pre::Link(links[rng->Uniform(4)]);
  }
  if (kind < 6) {  // concat
    return Pre::Concat(RandomPre(rng, depth - 1), RandomPre(rng, depth - 1));
  }
  if (kind < 8) {  // alt
    return Pre::Alt(RandomPre(rng, depth - 1), RandomPre(rng, depth - 1));
  }
  if (kind < 9) {  // bounded repeat
    return Pre::Repeat(RandomPre(rng, depth - 1),
                       static_cast<uint32_t>(1 + rng->Uniform(4)));
  }
  return Pre::RepeatUnbounded(RandomPre(rng, depth - 1));
}

TEST(RandomPreTest, DerivativeEnumerationAndWireAgree) {
  Rng rng(20260704);
  for (int round = 0; round < 120; ++round) {
    const Pre p = RandomPre(&rng, 3);
    // (1) ToString round-trips through the parser.
    auto reparsed = Pre::Parse(p.ToString());
    ASSERT_TRUE(reparsed.ok()) << p.ToString();
    EXPECT_TRUE(p.Equals(reparsed.value())) << p.ToString();
    // (2) Wire round-trip.
    serialize::Encoder enc;
    p.EncodeTo(&enc);
    serialize::Decoder dec(enc.data());
    auto decoded = Pre::DecodeFrom(&dec);
    ASSERT_TRUE(decoded.ok());
    EXPECT_TRUE(p.Equals(decoded.value())) << p.ToString();
    // (3) Matches agrees with enumeration up to length 3.
    const auto paths = p.EnumeratePaths(3, 500);
    std::set<std::vector<LinkType>> in_language(paths.begin(), paths.end());
    std::vector<std::vector<LinkType>> all{{}};
    for (size_t len = 1; len <= 3; ++len) {
      const size_t before = all.size();
      for (size_t i = 0; i < before; ++i) {
        if (all[i].size() != len - 1) continue;
        for (LinkType t : {I, L, G}) {
          auto extended = all[i];
          extended.push_back(t);
          all.push_back(std::move(extended));
        }
      }
    }
    if (paths.size() < 500) {  // enumeration wasn't truncated
      for (const auto& path : all) {
        EXPECT_EQ(p.Matches(path), in_language.contains(path))
            << p.ToString();
      }
    }
    // (4) Nullability agrees with the empty path.
    EXPECT_EQ(p.ContainsNull(), p.Matches({})) << p.ToString();
    // (5) FirstLinks is exactly the set of viable first symbols.
    for (LinkType t : {I, L, G}) {
      const bool in_first = [&] {
        for (LinkType f : p.FirstLinks()) {
          if (f == t) return true;
        }
        return false;
      }();
      EXPECT_EQ(in_first, !p.Derive(t).IsNever()) << p.ToString();
    }
  }
}

TEST(RandomPreTest, LogEquivalenceDuplicateImpliesSubsetLanguage) {
  // If the rules call `incoming` a duplicate of `logged`, every path of
  // incoming (up to length 4) must be in logged's language.
  Rng rng(42424242);
  int duplicates_checked = 0;
  for (int round = 0; round < 300; ++round) {
    const Pre a = RandomPre(&rng, 2);
    const Pre b = RandomPre(&rng, 2);
    const LogDecision d = ComparePreForLog(a, b);
    if (d.comparison != LogComparison::kDuplicate) continue;
    ++duplicates_checked;
    for (const auto& path : a.EnumeratePaths(4, 200)) {
      EXPECT_TRUE(b.Matches(path))
          << a.ToString() << " vs " << b.ToString();
    }
  }
  EXPECT_GT(duplicates_checked, 5);
}

TEST(RandomPreTest, SupersetRewritePreservesUnion) {
  // For star-prefix pairs, L(rewrite) ∪ L(logged) == L(incoming) up to
  // bounded length: nothing is lost and only the difference is new.
  Rng rng(777);
  for (int round = 0; round < 100; ++round) {
    // n >= 1: A*0·B simplifies to B, which rightly has no star prefix.
    const uint32_t n = 1 + static_cast<uint32_t>(rng.Uniform(4));
    const uint32_t m =
        n + 1 + static_cast<uint32_t>(rng.Uniform(3));  // m > n
    const LinkType a = rng.Uniform(2) == 0 ? L : G;
    const Pre rest = rng.Uniform(2) == 0 ? Pre::Link(G) : Pre::Link(I);
    const Pre logged = Pre::Concat(Pre::Repeat(Pre::Link(a), n), rest);
    const Pre incoming = Pre::Concat(Pre::Repeat(Pre::Link(a), m), rest);
    const LogDecision d = ComparePreForLog(incoming, logged);
    ASSERT_EQ(d.comparison, LogComparison::kSupersetRewrite)
        << incoming.ToString() << " vs " << logged.ToString();
    for (const auto& path : incoming.EnumeratePaths(6, 500)) {
      EXPECT_TRUE(d.rewritten->Matches(path) || logged.Matches(path))
          << incoming.ToString();
    }
    for (const auto& path : d.rewritten->EnumeratePaths(6, 500)) {
      EXPECT_TRUE(incoming.Matches(path)) << incoming.ToString();
    }
  }
}

TEST(RandomPreTest, CachedFormDecisionMatchesDirectComparison) {
  // The log table compares precomputed LogPreForms (one canonicalization per
  // entry) instead of re-canonicalizing both PREs per arrival. The two
  // procedures must make the same decision on every pair — curated shapes
  // plus a random corpus.
  std::vector<std::pair<Pre, Pre>> pairs = {
      {P("G.L*1"), P("G.L*1")},   {P("G | L"), P("L | G")},
      {P("L*1.G"), P("L*2.G")},   {P("L*4.G"), P("L*2.G")},
      {P("L*7.G"), P("L*.G")},    {P("L*.G"), P("L*3.G")},
      {P("G*2.L"), P("L*2.L")},   {P("L*2.G"), P("L*3.I")},
      {P("L"), P("G")},           {P("L*.G"), P("L*.G")},
  };
  Rng rng(20260806);
  for (int round = 0; round < 400; ++round) {
    pairs.emplace_back(RandomPre(&rng, 2), RandomPre(&rng, 2));
  }
  int rewrites = 0;
  for (const auto& [incoming, logged] : pairs) {
    const LogDecision direct = ComparePreForLog(incoming, logged);
    const LogDecision cached = ComparePreForLog(
        incoming, MakeLogPreForm(incoming), MakeLogPreForm(logged));
    ASSERT_EQ(direct.comparison, cached.comparison)
        << incoming.ToString() << " vs " << logged.ToString();
    ASSERT_EQ(direct.rewritten.has_value(), cached.rewritten.has_value());
    if (direct.rewritten.has_value()) {
      ++rewrites;
      EXPECT_TRUE(direct.rewritten->Equals(*cached.rewritten))
          << incoming.ToString() << " vs " << logged.ToString();
    }
  }
  // The corpus must exercise all three decisions for this to mean anything.
  EXPECT_GT(rewrites, 0);
}

}  // namespace
}  // namespace webdis::pre
