// Dynamic-web robustness (PROTOCOL.md §10): the churn oracle. Seeded
// mutation schedules (page edits, link rot, site spawns, whole-site
// retirements) run composed with the §6 fault machinery and §8 crash/
// recovery, asserting the staleness contract: every query terminates with a
// verdict, every reported answer is exact for the document version its
// report was stamped with (re-evaluated against the recorded historical
// html — so no report can mix rows from two versions of one document), and
// every node the verdict classifies stale / superseded / retired /
// epoch-gated is named, never silently torn.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "client/user_site.h"
#include "common/rng.h"
#include "common/strings.h"
#include "core/engine.h"
#include "disql/compiler.h"
#include "html/parser.h"
#include "html/url.h"
#include "net/fault.h"
#include "pre/pre.h"
#include "query/report.h"
#include "relational/eval.h"
#include "server/db_constructor.h"
#include "server/query_server.h"
#include "web/graph.h"
#include "web/mutation.h"
#include "web/university.h"

namespace webdis {
namespace {

std::set<std::string> AllRowKeys(
    const std::vector<relational::ResultSet>& results) {
  std::set<std::string> keys;
  for (const relational::ResultSet& rs : results) {
    for (const relational::Tuple& row : rs.rows) {
      std::string key = Join(rs.column_labels, ",") + ":";
      for (const relational::Value& v : row) key += v.ToString() + "|";
      keys.insert(std::move(key));
    }
  }
  return keys;
}

/// Canonical resource key for comparing report node URLs against planted
/// page URLs (reports carry resolved resource keys).
std::string Key(const std::string& url) {
  auto parsed = html::ParseUrl(url);
  EXPECT_TRUE(parsed.ok()) << url;
  return parsed.ok() ? parsed->ResourceKey() : url;
}

std::string HostOf(const std::string& url) {
  auto parsed = html::ParseUrl(url);
  EXPECT_TRUE(parsed.ok()) << url;
  return parsed.ok() ? parsed->host : url;
}

/// Order-insensitive fingerprint of one result set (labels + row multiset).
std::multiset<std::string> ResultSetRows(const relational::ResultSet& rs) {
  std::multiset<std::string> rows;
  for (const relational::Tuple& row : rs.rows) {
    std::string key = Join(rs.column_labels, ",") + ":";
    for (const relational::Value& v : row) key += v.ToString() + "|";
    rows.insert(std::move(key));
  }
  return rows;
}

/// Re-runs the server's evaluation chain (QueryServer::ProcessStage, the
/// ServerRouter half only) over one parsed document: starting at the stage
/// the received state identifies, evaluate while the guarding PRE admits the
/// zero-length path and the previous stage answered.
std::vector<relational::ResultSet> EvaluateStages(
    const disql::CompiledQuery& compiled, const html::ParsedDocument& doc,
    uint32_t num_q, const pre::Pre& rem_pre) {
  const std::vector<query::NodeQuery>& queries =
      compiled.web_query.remaining_queries;
  const std::vector<pre::Pre>& pres = compiled.web_query.future_pres;
  std::vector<relational::ResultSet> out;
  EXPECT_LE(num_q, queries.size());
  if (num_q > queries.size() || num_q == 0) return out;
  const relational::Database db = server::BuildNodeDatabase(doc);
  size_t stage = queries.size() - num_q;
  const pre::Pre* rem = &rem_pre;
  while (stage < queries.size() && rem->ContainsNull()) {
    auto rows = relational::Execute(queries[stage].select, db);
    if (!rows.ok() || rows->rows.empty()) break;
    out.push_back(std::move(rows).value());
    if (stage + 1 >= queries.size()) break;
    rem = &pres[stage];
    ++stage;
  }
  return out;
}

/// The §10.1 oracle for one accepted NodeReport: every row was computed from
/// exactly the stamped document version. Re-evaluates the node's stages
/// against the recorded historical html at that version and requires the
/// result sets to match exactly — a report mixing rows from two versions of
/// one document cannot pass, because no single version reproduces it.
void VerifyExactForStampedVersion(const web::WebGraph& web,
                                  const disql::CompiledQuery& compiled,
                                  const query::NodeReport& nr) {
  SCOPED_TRACE("report for " + nr.node_url);
  if (nr.visibility != query::NodeReport::kVisibilityNormal) {
    // Site-retired / epoch-gated visits evaluate nothing by definition.
    EXPECT_TRUE(nr.result_sets.empty());
    EXPECT_EQ(nr.doc_version, 0u);
    return;
  }
  if (nr.result_sets.empty()) return;  // routed or dead-ended: nothing to pin
  ASSERT_NE(nr.doc_version, 0u);
  const std::string* html = web.HistoricalHtml(nr.node_url, nr.doc_version);
  ASSERT_NE(html, nullptr) << nr.node_url << " @v" << nr.doc_version
                           << " missing from history";
  auto url = html::ParseUrl(nr.node_url);
  ASSERT_TRUE(url.ok());
  const html::ParsedDocument doc = html::ParseDocument(url.value(), *html);
  // A log-table superset rewrite never admits the zero-length path, so any
  // report carrying results was evaluated under the received rem_pre.
  const std::vector<relational::ResultSet> expected = EvaluateStages(
      compiled, doc, nr.received_state.num_q, nr.received_state.rem_pre);
  ASSERT_EQ(nr.result_sets.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(nr.result_sets[i].column_labels, expected[i].column_labels);
    EXPECT_EQ(ResultSetRows(nr.result_sets[i]), ResultSetRows(expected[i]));
  }
}

web::UniversityWeb SmallUniversity() {
  web::UniversityOptions options;
  options.seed = 11;
  options.departments = 2;
  options.labs_per_department = 2;
  return web::GenerateUniversityWeb(options);
}

disql::CompiledQuery CompileOrDie(const std::string& disql) {
  auto compiled = disql::CompileDisql(disql);
  EXPECT_TRUE(compiled.ok()) << disql;
  return std::move(compiled).value();
}

core::EngineOptions ChurnRecoveryOptions() {
  core::EngineOptions options;
  options.server.retry.enabled = true;
  options.server.retry.initial_timeout = 100 * kMillisecond;
  options.server.retry.max_timeout = 400 * kMillisecond;
  options.server.retry.max_attempts = 4;
  options.client.retry = options.server.retry;
  options.client.entry_deadline = 10 * kSecond;
  // Retired hosts stop their HTTP servers too, so the data-shipping
  // fallback has nothing to fetch from — keep undeliverable nodes as a
  // named outcome instead of continuing centrally.
  options.fallback_processing = false;
  return options;
}

// ---------------------------------------------------------------------------
// Deterministic single-mutation semantics.
// ---------------------------------------------------------------------------

// An edit landing after the visit leaves the answer exact for the stamped
// version; the verdict classifies the edited node stale-consistent and
// everything else fresh. Never a silent torn read: the stamp says exactly
// which version each row came from.
TEST(ChurnTest, EditAfterVisitClassifiesStaleConsistent) {
  web::UniversityWeb uni = SmallUniversity();
  const disql::CompiledQuery compiled = CompileOrDie(uni.convener_disql);
  std::set<std::string> reference;
  {
    core::Engine engine(&uni.web);
    auto outcome = engine.RunCompiled(compiled);
    ASSERT_TRUE(outcome.ok());
    ASSERT_TRUE(outcome->completed);
    reference = AllRowKeys(outcome->results);
    ASSERT_FALSE(reference.empty());
  }

  uni.web.EnableHistory();
  const std::string edited_url = uni.conveners[0].first;
  web::MutationPlan plan;
  web::Mutation edit;
  edit.kind = web::Mutation::Kind::kEditPage;
  edit.at = 5 * kSecond;  // long after the traversal drained
  edit.url = edited_url;
  edit.html = "post-visit revision";
  plan.Add(edit);

  core::Engine engine(&uni.web);
  engine.InstallMutationPlan(&uni.web, &plan);
  auto outcome = engine.RunCompiled(compiled);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->completed);
  EXPECT_EQ(plan.stats().pages_edited, 1u);

  // The answer was computed before the edit: exact for its stamped versions,
  // identical to the frozen reference.
  EXPECT_EQ(AllRowKeys(outcome->results), reference);
  EXPECT_EQ(outcome->pinned_epoch, 1u);
  ASSERT_FALSE(outcome->node_versions.empty());
  EXPECT_EQ(outcome->stale_consistent_nodes, 1u);
  ASSERT_EQ(outcome->stale_node_urls.size(), 1u);
  EXPECT_EQ(outcome->stale_node_urls[0], Key(edited_url));
  EXPECT_EQ(outcome->superseded_nodes, 0u);
  EXPECT_EQ(outcome->fresh_nodes + outcome->stale_consistent_nodes,
            outcome->node_versions.size());
  // The stamp on the edited node is the pre-edit version.
  auto it = outcome->node_versions.find(Key(edited_url));
  ASSERT_NE(it, outcome->node_versions.end());
  EXPECT_EQ(it->second, 1u);
}

// A site spawned mid-run is invisible to the in-flight query (its documents
// are born into the next epoch), but a query submitted after the spawn pins
// the new epoch and sees it — §10.3 end to end.
TEST(ChurnTest, SpawnedSiteIsEpochGatedUntilTheNextQuery) {
  web::UniversityWeb uni = SmallUniversity();
  uni.web.EnableHistory();
  const disql::CompiledQuery sitemap = CompileOrDie(
      "select a.base, a.href from document d such that \"" + uni.root_url +
      "\" G.(L*1) d, anchor a");

  const std::string spawn_url = "http://spawned.example/";
  web::MutationPlan plan;
  web::Mutation spawn;
  spawn.kind = web::Mutation::Kind::kSpawnSite;
  spawn.at = 1 * kMillisecond;  // before the first visit (latency is 20ms)
  spawn.url = spawn_url;
  spawn.html = "<html><body><p>spawned mid-run</p></body></html>";
  plan.Add(spawn);
  web::Mutation link;
  link.kind = web::Mutation::Kind::kAddLink;
  link.at = 1 * kMillisecond;
  link.url = uni.root_url;
  link.target_url = spawn_url;
  plan.Add(link);

  core::Engine engine(&uni.web);
  engine.InstallMutationPlan(&uni.web, &plan);

  // Query A is submitted at epoch 1; the spawn batch advances to epoch 2
  // before any visit. The root is visited at version 2 (link included), the
  // spawned site receives a clone and reports it epoch-gated.
  auto first = engine.RunCompiled(sitemap);
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(first->completed);
  EXPECT_EQ(plan.stats().sites_spawned, 1u);
  ASSERT_EQ(engine.spawned_hosts().size(), 1u);
  EXPECT_EQ(engine.spawned_hosts()[0], HostOf(spawn_url));
  EXPECT_EQ(first->pinned_epoch, 1u);
  ASSERT_EQ(first->epoch_gated_nodes.size(), 1u);
  EXPECT_EQ(first->epoch_gated_nodes[0], Key(spawn_url));
  EXPECT_FALSE(first->node_versions.contains(Key(spawn_url)));
  // The root's rows include the new anchor — exact for root's version 2.
  auto root_version = first->node_versions.find(Key(uni.root_url));
  ASSERT_NE(root_version, first->node_versions.end());
  EXPECT_EQ(root_version->second, 2u);

  // Query B pins epoch 2: the spawned site is now a first-class node.
  auto second = engine.RunCompiled(sitemap);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->completed);
  EXPECT_EQ(second->pinned_epoch, 2u);
  EXPECT_TRUE(second->epoch_gated_nodes.empty());
  EXPECT_TRUE(second->node_versions.contains(Key(spawn_url)));
  EXPECT_EQ(second->fresh_nodes, second->node_versions.size());
}

// Retiring a site mid-query converts its pending work into a named degraded
// outcome: the retired host answers SiteRetired (terminal — no retry ever
// recovers a retired site), the CHT drains, and the verdict lists the host
// in retired_sites rather than hanging or faking freshness.
TEST(ChurnTest, MidQueryRetirementIsNamedNeverRetried) {
  web::UniversityWeb uni = SmallUniversity();
  const disql::CompiledQuery compiled = CompileOrDie(uni.convener_disql);
  std::set<std::string> reference;
  {
    core::Engine engine(&uni.web);
    auto outcome = engine.RunCompiled(compiled);
    ASSERT_TRUE(outcome.ok());
    reference = AllRowKeys(outcome->results);
    ASSERT_FALSE(reference.empty());
  }

  uni.web.EnableHistory();
  // Retire the first convener's lab site before any clone can reach it
  // (visits there need two 20ms hops; 30ms sits in between).
  const std::string victim = HostOf(uni.conveners[0].first);
  ASSERT_NE(victim, HostOf(uni.root_url));
  web::MutationPlan plan;
  web::Mutation retire;
  retire.kind = web::Mutation::Kind::kRetireSite;
  retire.at = 30 * kMillisecond;
  retire.host = victim;
  plan.Add(retire);

  core::Engine engine(&uni.web, ChurnRecoveryOptions());
  engine.InstallMutationPlan(&uni.web, &plan);
  auto outcome = engine.RunCompiled(compiled);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->completed);
  EXPECT_FALSE(outcome->partial);  // named degradation, not a GC timeout
  EXPECT_EQ(plan.stats().sites_retired, 1u);
  ASSERT_EQ(engine.churn_retired_hosts().size(), 1u);
  EXPECT_EQ(engine.churn_retired_hosts()[0], victim);

  // The retired host is named in the verdict and its rows are missing.
  ASSERT_FALSE(outcome->retired_sites.empty());
  for (const std::string& host : outcome->retired_sites) {
    EXPECT_EQ(host, victim);
  }
  EXPECT_GT(outcome->server_stats.site_retired_nacks_sent +
                outcome->server_stats.retired_reports_sent,
            0u);
  const std::set<std::string> keys = AllRowKeys(outcome->results);
  EXPECT_LT(keys.size(), reference.size());
  for (const std::string& key : keys) EXPECT_TRUE(reference.contains(key));
  // Surviving visits are all fresh — retirement removed unvisited documents,
  // so nothing reads as stale.
  EXPECT_EQ(outcome->fresh_nodes, outcome->node_versions.size());
}

// The §9.1 result cache is keyed by (resource, version): after an edit the
// next pinned query re-evaluates against the new version — a cached answer
// for the old version is never served across the bump.
TEST(ChurnTest, ResultCacheNeverServesAcrossAVersionBump) {
  web::UniversityWeb uni = SmallUniversity();
  uni.web.EnableHistory();
  const disql::CompiledQuery sitemap = CompileOrDie(
      "select a.base, a.href from document d such that \"" + uni.root_url +
      "\" G.(L*1) d, anchor a");
  // The edited page must be inside the PRE's range (one G hop from the
  // root) for its new anchor to surface as a row: follow the root's first
  // global link to a department homepage.
  const web::WebGraph::Document* root_doc = uni.web.Find(uni.root_url);
  ASSERT_NE(root_doc, nullptr);
  std::string department_home;
  for (const html::ParsedAnchor& anchor : root_doc->parsed.anchors) {
    if (anchor.ltype == html::LinkType::kGlobal) {
      department_home = anchor.resolved.ToString();
      break;
    }
  }
  ASSERT_FALSE(department_home.empty());

  web::MutationPlan plan;
  web::Mutation link;
  link.kind = web::Mutation::Kind::kAddLink;
  link.at = 2 * kSecond;  // between the first and second runs
  link.url = department_home;
  link.target_url = "http://late-arrival.example/";
  plan.Add(link);

  core::EngineOptions options;
  options.server.share_results = true;
  core::Engine engine(&uni.web, options);
  engine.InstallMutationPlan(&uni.web, &plan);

  auto first = engine.RunCompiled(sitemap);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first->completed);
  const std::set<std::string> before = AllRowKeys(first->results);

  auto second = engine.RunCompiled(sitemap);
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE(second->completed);
  EXPECT_EQ(plan.stats().links_added, 1u);
  const std::set<std::string> after = AllRowKeys(second->results);

  // The second run saw version 2 of the root: one extra anchor row, so the
  // stale cached entry (keyed @v1) was provably not served.
  EXPECT_GT(after.size(), before.size());
  bool found_new_link = false;
  for (const std::string& key : after) {
    if (key.find("late-arrival.example") != std::string::npos) {
      found_new_link = true;
    }
  }
  EXPECT_TRUE(found_new_link);
  for (const std::string& key : before) EXPECT_TRUE(after.contains(key));
  EXPECT_GT(second->server_stats.result_cache_hits, 0u);  // unedited pages
}

// ---------------------------------------------------------------------------
// The composed churn oracle (ISSUE 9 tentpole): 24 seeded schedules mixing
// web mutation with message drop/duplication/delay, admission-queue
// overload (a third of the seeds run every server admission-limited with a
// nonzero service time), and server crash/restart (half the seeds durable:
// snapshots + WAL replay across version bumps and retirement). Invariants
// per schedule:
//   1. the query always terminates with a verdict;
//   2. every accepted report is exact for its stamped document version
//      (re-evaluated against recorded history — so no report mixes rows
//      from two versions of one document);
//   3. the freshness classification is complete and consistent, and every
//      degraded node is named (retired hosts, epoch-gated spawns,
//      unreachable hosts) — never a silent torn read.
// ---------------------------------------------------------------------------

TEST(ChurnScheduleTest, ComposedSchedulesKeepVerdictsSoundAndStamped) {
  web::UniversityOptions uni_options;
  uni_options.seed = 11;
  uni_options.departments = 2;
  uni_options.labs_per_department = 2;

  uint64_t total_dropped = 0;
  uint64_t total_shed = 0;
  uint64_t total_mutations = 0;
  size_t stale_or_superseded_runs = 0;
  size_t retired_runs = 0;
  size_t gated_runs = 0;
  size_t reports_verified = 0;
  for (uint64_t seed = 1; seed <= 24; ++seed) {
    SCOPED_TRACE("churn schedule seed " + std::to_string(seed));
    Rng rng(seed * 6151);

    // Mutations are destructive: every seed gets a fresh web.
    web::UniversityWeb uni = web::GenerateUniversityWeb(uni_options);
    uni.web.EnableHistory();
    const disql::CompiledQuery compiled = CompileOrDie(uni.convener_disql);
    ASSERT_FALSE(compiled.start_urls.empty());

    net::FaultPlan fault_plan(seed);
    for (net::MessageType type :
         {net::MessageType::kWebQuery, net::MessageType::kReport,
          net::MessageType::kDeliveryAck}) {
      net::FaultPlan::Rule rule;
      rule.type = type;
      rule.drop_prob = 0.02 + 0.10 * rng.NextDouble();
      rule.duplicate_prob = 0.08 * rng.NextDouble();
      fault_plan.AddRule(rule);
    }
    net::FaultPlan::Rule delay_rule;
    delay_rule.type = net::MessageType::kReport;
    delay_rule.delay_prob = 0.25;
    delay_rule.delay = rng.UniformRange(1, 8) * kMillisecond;
    fault_plan.AddRule(delay_rule);

    web::MutationPlan::RandomOptions mutation_options;
    mutation_options.seed = seed * 31;
    mutation_options.edits = 1 + static_cast<int>(rng.Uniform(4));
    mutation_options.link_adds = static_cast<int>(rng.Uniform(3));
    mutation_options.link_removes = static_cast<int>(rng.Uniform(2));
    mutation_options.spawns = static_cast<int>(rng.Uniform(2));
    mutation_options.retires = 1 + static_cast<int>(rng.Uniform(2));
    mutation_options.window_start = 10 * kMillisecond;
    mutation_options.window_end = 200 * kMillisecond;
    mutation_options.protected_hosts = {core::Engine::kClientHost,
                                        HostOf(compiled.start_urls[0])};
    web::MutationPlan mutation_plan =
        web::MutationPlan::Random(uni.web, mutation_options);

    core::EngineOptions options = ChurnRecoveryOptions();
    if (seed % 3 == 0) {
      // Overload third: tight admission queues + paced drains contend with
      // the mutation schedule, so shed/NACK/retry paths run while sites
      // version-bump and retire under them.
      options.server.admission.max_pending = 1;
      options.server.admission.service_time =
          rng.UniformRange(5, 20) * kMillisecond;
    }
    if (seed % 2 == 0) {
      // Durable half: WAL replay and snapshot recovery must hold across
      // version bumps and retirement conversions.
      options.server.persist.enabled = true;
      options.server.persist.wal_enabled = true;
      options.server.persist.snapshot_every_clones = 2;
      options.server.persist.wal_compact_bytes = 1024;
    }
    core::Engine engine(&uni.web, options);
    engine.network().SetFaultPlan(&fault_plan);
    engine.InstallMutationPlan(&uni.web, &mutation_plan);

    if (rng.Bernoulli(0.5)) {
      const std::string victim = rng.Pick(engine.participating_hosts());
      server::QueryServer* qs = engine.server_for(victim);
      ASSERT_NE(qs, nullptr);
      const SimDuration down = rng.UniformRange(40, 250) * kMillisecond;
      const SimDuration up = down + rng.UniformRange(100, 700) * kMillisecond;
      engine.network().ScheduleAfter(down, [qs] { qs->Crash(); });
      engine.network().ScheduleAfter(
          up, [qs] { EXPECT_TRUE(qs->Restart().ok()); });
    }

    std::vector<query::NodeReport> reports;
    engine.user_site().SetReportObserver(
        [&reports](const query::QueryId&, const query::NodeReport& nr) {
          reports.push_back(nr);
        });

    // Overload seeds submit a second staggered query so the one-deep
    // admission queues genuinely overflow while the web mutates under both.
    const core::TrafficSummary before = engine.TrafficSnapshot();
    std::vector<query::QueryId> ids;
    auto first = engine.Submit(compiled);
    ASSERT_TRUE(first.ok());
    ids.push_back(first.value());
    if (seed % 3 == 0) {
      engine.network().ScheduleAfter(
          rng.UniformRange(1, 40) * kMillisecond, [&engine, &ids, &compiled] {
            auto id = engine.Submit(compiled);
            ASSERT_TRUE(id.ok());
            ids.push_back(id.value());
          });
    }
    engine.network().RunUntilIdle();

    // Invariant 2: exact-for-its-stamped-version, report by report (covers
    // every query submitted this schedule).
    for (const query::NodeReport& nr : reports) {
      VerifyExactForStampedVersion(uni.web, compiled, nr);
      if (!nr.result_sets.empty()) ++reports_verified;
    }

    for (size_t i = 0; i < ids.size(); ++i) {
      const core::RunOutcome outcome = engine.CollectOutcome(ids[i], before);

      // Invariant 1: always a verdict, never a hang.
      EXPECT_TRUE(outcome.completed);
      if (outcome.partial) {
        EXPECT_FALSE(outcome.unreachable_hosts.empty());
      }

      // Never a duplicated answer row.
      const std::set<std::string> keys = AllRowKeys(outcome.results);
      EXPECT_EQ(keys.size(), outcome.TotalRows());

      // Invariant 3: the classification is complete and every degraded
      // node is named against the engine's own churn record.
      if (i == 0) {
        EXPECT_EQ(outcome.pinned_epoch, 1u);  // submitted pre-mutation
      } else {
        EXPECT_GE(outcome.pinned_epoch, 1u);  // staggered into the churn
      }
      EXPECT_EQ(outcome.fresh_nodes + outcome.stale_consistent_nodes +
                    outcome.superseded_nodes,
                outcome.node_versions.size());
      EXPECT_EQ(outcome.stale_node_urls.size(),
                outcome.stale_consistent_nodes);
      EXPECT_EQ(outcome.superseded_node_urls.size(),
                outcome.superseded_nodes);
      for (const std::string& host : outcome.retired_sites) {
        EXPECT_TRUE(std::find(engine.churn_retired_hosts().begin(),
                              engine.churn_retired_hosts().end(),
                              host) != engine.churn_retired_hosts().end())
            << host;
      }
      for (const std::string& node : outcome.epoch_gated_nodes) {
        const std::string node_host =
            HostOf(node.find("://") == std::string::npos ? "http://" + node
                                                         : node);
        EXPECT_TRUE(std::find(engine.spawned_hosts().begin(),
                              engine.spawned_hosts().end(), node_host) !=
                    engine.spawned_hosts().end())
            << node;
      }
      if (outcome.budget_exhausted) {
        EXPECT_FALSE(outcome.budget_exceeded_nodes.empty());
      }

      if (outcome.stale_consistent_nodes + outcome.superseded_nodes > 0) {
        ++stale_or_superseded_runs;
      }
      if (!outcome.retired_sites.empty()) ++retired_runs;
      if (!outcome.epoch_gated_nodes.empty()) ++gated_runs;
    }

    const server::QueryServerStats server_stats =
        engine.AggregateServerStats();
    total_shed += server_stats.clones_shed + server_stats.clones_evicted;
    total_dropped += fault_plan.stats().dropped;
    total_mutations += mutation_plan.stats().pages_edited +
                       mutation_plan.stats().links_added +
                       mutation_plan.stats().links_removed +
                       mutation_plan.stats().sites_spawned +
                       mutation_plan.stats().sites_retired;
  }

  // The sweep was no placebo: messages were really lost, the web really
  // changed under the queries, answers were really verified against
  // history, and the interesting verdict classes all occurred.
  EXPECT_GT(total_dropped, 0u);
  EXPECT_GT(total_shed, 0u);
  EXPECT_GT(total_mutations, 0u);
  EXPECT_GT(reports_verified, 0u);
  EXPECT_GT(stale_or_superseded_runs, 0u);
  EXPECT_GT(retired_runs, 0u);
}

}  // namespace
}  // namespace webdis
