#include <gtest/gtest.h>

#include "client/cht.h"
#include "serialize/encoder.h"
#include "client/user_site.h"
#include "core/engine.h"
#include "net/fault.h"
#include "web/topologies.h"

namespace webdis::client {
namespace {

using query::CloneState;

pre::Pre P(const std::string& s) { return pre::Pre::Parse(s).value(); }
CloneState S(uint32_t n, const std::string& p) { return CloneState{n, P(p)}; }

// -- CurrentHostsTable, paper mode ---------------------------------------------

TEST(ChtPaperModeTest, AddMarkDeleteComplete) {
  CurrentHostsTable cht(/*dedup=*/true, /*robust=*/false);
  EXPECT_FALSE(cht.AllDeleted());  // empty table is not complete
  EXPECT_TRUE(cht.Add("http://a/x", S(2, "L")));
  EXPECT_TRUE(cht.Add("http://a/y", S(2, "L")));
  EXPECT_FALSE(cht.AllDeleted());
  EXPECT_TRUE(cht.MarkDeleted("http://a/x", S(2, "L")));
  EXPECT_FALSE(cht.AllDeleted());
  EXPECT_TRUE(cht.MarkDeleted("http://a/y", S(2, "L")));
  EXPECT_TRUE(cht.AllDeleted());
  EXPECT_EQ(cht.max_active(), 2u);
}

TEST(ChtPaperModeTest, DeleteRequiresMatchingState) {
  CurrentHostsTable cht(true, false);
  cht.Add("http://a/x", S(2, "L"));
  EXPECT_FALSE(cht.MarkDeleted("http://a/x", S(1, "L")));
  EXPECT_FALSE(cht.MarkDeleted("http://a/x", S(2, "G")));
  EXPECT_EQ(cht.unmatched_deletes(), 2u);
  EXPECT_TRUE(cht.MarkDeleted("http://a/x", S(2, "L")));
}

TEST(ChtPaperModeTest, DedupSuppressesEquivalentAdds) {
  CurrentHostsTable cht(true, false);
  EXPECT_TRUE(cht.Add("n", S(1, "L*2.G")));
  // Identical: suppressed.
  EXPECT_FALSE(cht.Add("n", S(1, "L*2.G")));
  // Subset: suppressed ("should not be entered into the CHT", §3.1.1).
  EXPECT_FALSE(cht.Add("n", S(1, "L*1.G")));
  // Superset: kept (the target will process the difference).
  EXPECT_TRUE(cht.Add("n", S(1, "L*4.G")));
  EXPECT_EQ(cht.suppressed_count(), 2u);
  EXPECT_EQ(cht.total_count(), 2u);
}

TEST(ChtPaperModeTest, DedupOffKeepsEverything) {
  CurrentHostsTable cht(/*dedup=*/false, false);
  EXPECT_TRUE(cht.Add("n", S(1, "L")));
  EXPECT_TRUE(cht.Add("n", S(1, "L")));
  EXPECT_EQ(cht.total_count(), 2u);
  // Two identical entries need two deletes.
  EXPECT_TRUE(cht.MarkDeleted("n", S(1, "L")));
  EXPECT_FALSE(cht.AllDeleted());
  EXPECT_TRUE(cht.MarkDeleted("n", S(1, "L")));
  EXPECT_TRUE(cht.AllDeleted());
}

// -- CurrentHostsTable, robust mode ---------------------------------------------

TEST(ChtRobustModeTest, BalancesAddsAndDeletes) {
  CurrentHostsTable cht(true, /*robust=*/true);
  cht.Add("n", S(1, "L"));
  cht.Add("n", S(1, "L"));  // suppressed but still counted
  EXPECT_FALSE(cht.AllDeleted());
  cht.MarkDeleted("n", S(1, "L"));
  EXPECT_FALSE(cht.AllDeleted());  // balance is +1
  cht.MarkDeleted("n", S(1, "L"));
  EXPECT_TRUE(cht.AllDeleted());
}

TEST(ChtRobustModeTest, ToleratesDeleteBeforeAdd) {
  // The overtaking case: a small drop-report arrives before the (large)
  // report that creates its entry.
  CurrentHostsTable cht(true, true);
  cht.Add("start", S(1, "L"));
  cht.MarkDeleted("start", S(1, "L"));
  cht.MarkDeleted("n", S(1, "G"));  // delete first...
  EXPECT_FALSE(cht.AllDeleted());   // balance for n is -1: still in flight
  cht.Add("n", S(1, "G"));          // ...then its add
  EXPECT_TRUE(cht.AllDeleted());
}

TEST(ChtRobustModeTest, EmptyIsNotComplete) {
  CurrentHostsTable cht(true, true);
  EXPECT_FALSE(cht.AllDeleted());
}

TEST(ChtRobustModeTest, StateCanonicalizationInBalanceKeys) {
  CurrentHostsTable cht(false, true);
  cht.Add("n", S(1, "G | L"));
  cht.MarkDeleted("n", S(1, "L | G"));  // same language, same key
  EXPECT_TRUE(cht.AllDeleted());
}

// -- UserSite ---------------------------------------------------------------------

class UserSiteTest : public ::testing::Test {
 protected:
  core::Engine MakeEngine(core::EngineOptions options = {}) {
    return core::Engine(&scenario_.web, options);
  }
  web::CampusScenario scenario_ = web::BuildCampusScenario();
};

TEST_F(UserSiteTest, SubmitAssignsDistinctIdsAndPorts) {
  core::Engine engine = MakeEngine();
  auto compiled = disql::CompileDisql(scenario_.disql);
  ASSERT_TRUE(compiled.ok());
  auto id1 = engine.Submit(compiled.value(), "maya");
  auto id2 = engine.Submit(compiled.value(), "maya");
  ASSERT_TRUE(id1.ok());
  ASSERT_TRUE(id2.ok());
  EXPECT_NE(id1->query_number, id2->query_number);
  EXPECT_NE(id1->reply_port, id2->reply_port);
  EXPECT_EQ(id1->user, "maya");
  engine.network().RunUntilIdle();
  EXPECT_TRUE(engine.user_site().IsComplete(id1.value()));
  EXPECT_TRUE(engine.user_site().IsComplete(id2.value()));
}

TEST_F(UserSiteTest, UnknownStartSiteFallsBack) {
  core::Engine engine = MakeEngine();
  auto compiled = disql::CompileDisql(
      "select d.url from document d such that \"http://nonexistent.example/\""
      " L d");
  ASSERT_TRUE(compiled.ok());
  auto id = engine.Submit(compiled.value());
  ASSERT_TRUE(id.ok());
  engine.network().RunUntilIdle();
  const UserSite::QueryRun* run = engine.user_site().Find(id.value());
  ASSERT_NE(run, nullptr);
  EXPECT_TRUE(run->completed);  // nothing outstanding
  ASSERT_EQ(run->fallback_nodes.size(), 1u);
  EXPECT_EQ(run->fallback_nodes[0].node_url, "http://nonexistent.example/");
}

TEST_F(UserSiteTest, PassiveCancelStopsProcessing) {
  core::EngineOptions options;
  // Slow the network so we can cancel mid-flight.
  options.network.inter_host_latency = 100 * kMillisecond;
  core::Engine engine = MakeEngine(options);
  auto compiled = disql::CompileDisql(scenario_.disql);
  ASSERT_TRUE(compiled.ok());
  auto id = engine.Submit(compiled.value());
  ASSERT_TRUE(id.ok());
  // Let the first hop happen, then cancel.
  engine.network().RunOne();
  engine.user_site().Cancel(id.value());
  engine.network().RunUntilIdle();
  const UserSite::QueryRun* run = engine.user_site().Find(id.value());
  EXPECT_TRUE(run->cancelled);
  EXPECT_FALSE(run->completed);
  // Passive termination: at least one server hit a refused report.
  EXPECT_GT(engine.AggregateServerStats().passive_terminations, 0u);
  // And no terminate messages were needed.
  EXPECT_EQ(engine.TrafficSnapshot().terminate_messages, 0u);
}

TEST_F(UserSiteTest, ActiveCancelSendsTerminates) {
  core::EngineOptions options;
  options.client.active_termination = true;
  options.network.inter_host_latency = 100 * kMillisecond;
  core::Engine engine = MakeEngine(options);
  auto compiled = disql::CompileDisql(scenario_.disql);
  ASSERT_TRUE(compiled.ok());
  auto id = engine.Submit(compiled.value());
  ASSERT_TRUE(id.ok());
  engine.network().RunOne();
  engine.user_site().Cancel(id.value());
  engine.network().RunUntilIdle();
  EXPECT_GT(engine.TrafficSnapshot().terminate_messages, 0u);
  const UserSite::QueryRun* run = engine.user_site().Find(id.value());
  EXPECT_GT(run->stats.termination_messages_sent, 0u);
}

TEST_F(UserSiteTest, TimeoutCompletionModeWaitsFullTimeout) {
  core::EngineOptions options;
  options.client.use_cht = false;
  options.completion_timeout = 10 * kSecond;
  core::Engine engine = MakeEngine(options);
  auto outcome = engine.Run(scenario_.disql);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->completed);
  // The timeout strawman declares completion a full timeout after the last
  // arrival — CHT mode would have known at last_report_time.
  EXPECT_EQ(outcome->completion_time,
            outcome->last_report_time + 10 * kSecond);
}

TEST_F(UserSiteTest, SubmitRejectsEmptyStartNodes) {
  core::Engine engine = MakeEngine();
  disql::CompiledQuery empty;
  auto id = engine.Submit(empty);
  EXPECT_FALSE(id.ok());
  EXPECT_EQ(id.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(UserSiteTest, ReportForUnknownQueryIgnored) {
  core::Engine engine = MakeEngine();
  auto compiled = disql::CompileDisql(scenario_.disql);
  ASSERT_TRUE(compiled.ok());
  auto id = engine.Submit(compiled.value());
  ASSERT_TRUE(id.ok());
  // Forge a report with a mismatched query id straight to the result port.
  query::QueryReport forged;
  forged.id = id.value();
  forged.id.query_number += 99;  // wrong query
  query::NodeReport nr;
  nr.node_url = "http://bogus/";
  nr.received_state =
      query::CloneState{1, pre::Pre::Parse("L").value()};
  forged.node_reports.push_back(std::move(nr));
  serialize::Encoder enc;
  forged.EncodeTo(&enc);
  ASSERT_TRUE(engine.network()
                  .Send(net::Endpoint{"attacker", 1},
                        net::Endpoint{core::Engine::kClientHost,
                                      id->reply_port},
                        net::MessageType::kReport, enc.Release())
                  .ok());
  engine.network().RunUntilIdle();
  // The real query still completed correctly despite the forgery.
  const client::UserSite::QueryRun* run = engine.user_site().Find(id.value());
  EXPECT_TRUE(run->completed);
  EXPECT_EQ(run->results.size(), 2u);
}

TEST_F(UserSiteTest, ResultsDedupAcrossReports) {
  // With server dedup off, duplicate rows arrive; the client filters them.
  core::EngineOptions options;
  options.server.dedup_enabled = false;
  web::Scenario fig5 = web::BuildFig5Scenario();
  core::Engine engine(&fig5.web, options);
  auto outcome = engine.Run(fig5.disql);
  ASSERT_TRUE(outcome.ok());
  EXPECT_GT(outcome->client_stats.duplicate_rows_filtered, 0u);
  // Unique rows only in the final result sets.
  for (const relational::ResultSet& rs : outcome->results) {
    std::set<std::string> seen;
    for (const relational::Tuple& row : rs.rows) {
      std::string key;
      for (const relational::Value& v : row) key += v.ToString() + "|";
      EXPECT_TRUE(seen.insert(key).second) << "duplicate row " << key;
    }
  }
}

// -- Failure handling: CHT deadline GC and report receipt dedup ---------------

TEST(ChtDeadlineTest, DrainExpiredCollectsIdleNonzeroKeys) {
  CurrentHostsTable cht(/*dedup=*/true, /*robust=*/true);
  cht.Add("http://a/x", S(1, "L"), /*now=*/0);
  cht.Add("http://b/y", S(1, "G"), 0);
  cht.MarkDeleted("http://b/y", S(1, "G"), 5 * kMillisecond);
  // Fresh activity just before the sweep keeps a key alive.
  cht.Add("http://c/z", S(2, "L"), 9 * kMillisecond);

  auto expired = cht.DrainExpired(11 * kMillisecond, 10 * kMillisecond);
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0].node_url, "http://a/x");
  EXPECT_FALSE(cht.AllDeleted());  // c/z is still outstanding

  cht.MarkDeleted("http://c/z", S(2, "L"), 12 * kMillisecond);
  EXPECT_TRUE(cht.AllDeleted());

  // Negative balances (a delete whose matching add was lost) expire too.
  cht.MarkDeleted("http://d/w", S(1, "L"), 20 * kMillisecond);
  EXPECT_FALSE(cht.AllDeleted());
  auto expired2 = cht.DrainExpired(31 * kMillisecond, 10 * kMillisecond);
  ASSERT_EQ(expired2.size(), 1u);
  EXPECT_EQ(expired2[0].node_url, "http://d/w");
  EXPECT_TRUE(cht.AllDeleted());
}

core::EngineOptions FailureHandlingOptions() {
  core::EngineOptions options;
  options.server.retry.enabled = true;
  options.server.retry.initial_timeout = 100 * kMillisecond;
  options.server.retry.max_timeout = 400 * kMillisecond;
  options.server.retry.max_attempts = 4;
  options.client.retry = options.server.retry;
  options.client.entry_deadline = 10 * kSecond;
  return options;
}

TEST(DeadlineGcTest, UnreachableHostYieldsExplicitPartialCompletion) {
  web::CampusScenario scenario = web::BuildCampusScenario();
  core::Engine engine(&scenario.web, FailureHandlingOptions());
  // Every report from the DSL site is lost after accept, retransmissions
  // included: its CHT entries go idle and only the deadline GC can finish
  // the query.
  net::FaultPlan plan;
  net::FaultPlan::Rule rule;
  rule.type = net::MessageType::kReport;
  rule.from_host = "dsl.serc.iisc.ernet.in";
  rule.drop_prob = 1.0;
  plan.AddRule(rule);
  engine.network().SetFaultPlan(&plan);

  auto outcome = engine.Run(scenario.disql);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_TRUE(outcome->completed);
  EXPECT_TRUE(outcome->partial);
  EXPECT_GT(outcome->client_stats.entries_gc, 0u);
  bool dsl_named = false;
  for (const std::string& host : outcome->unreachable_hosts) {
    if (host.find("dsl.serc") != std::string::npos) dsl_named = true;
  }
  EXPECT_TRUE(dsl_named);
  // The sender side really did give up on those reports.
  EXPECT_GT(engine.AggregateServerStats().retry_exhausted, 0u);
}

TEST(ReportDedupTest, DuplicatedReportTransfersAreAbsorbed) {
  web::CampusScenario scenario = web::BuildCampusScenario();

  size_t reference_rows = 0;
  {
    core::Engine engine(&scenario.web);
    auto outcome = engine.Run(scenario.disql);
    ASSERT_TRUE(outcome.ok());
    reference_rows = outcome->TotalRows();
  }

  core::Engine engine(&scenario.web, FailureHandlingOptions());
  // Every report arrives twice; receipt dedup must absorb the replays
  // before they reach the CHT (a replayed delete would unbalance it).
  net::FaultPlan plan;
  net::FaultPlan::Rule rule;
  rule.type = net::MessageType::kReport;
  rule.duplicate_prob = 1.0;
  plan.AddRule(rule);
  engine.network().SetFaultPlan(&plan);

  auto outcome = engine.Run(scenario.disql);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_TRUE(outcome->completed);
  EXPECT_FALSE(outcome->partial);
  EXPECT_GT(outcome->client_stats.redeliveries_suppressed, 0u);
  EXPECT_EQ(outcome->TotalRows(), reference_rows);
  // Unique rows only in the final result sets.
  for (const relational::ResultSet& rs : outcome->results) {
    std::set<std::string> seen;
    for (const relational::Tuple& row : rs.rows) {
      std::string key;
      for (const relational::Value& v : row) key += v.ToString() + "|";
      EXPECT_TRUE(seen.insert(key).second) << "duplicate row " << key;
    }
  }
}

}  // namespace
}  // namespace webdis::client
