// Multiple in-flight queries through one deployment: distinct result
// sockets, per-query CHTs, per-query log-table keys — nothing may bleed
// between queries, and cancelling one must not disturb the others.
#include <gtest/gtest.h>

#include <set>

#include "common/strings.h"
#include "core/engine.h"
#include "web/synth.h"
#include "web/topologies.h"

namespace webdis {
namespace {

std::string QueryFor(const web::WebGraph&, int depth,
                     const std::string& keyword) {
  return "select d.url from document d such that \"" + web::SynthUrl(0, 0) +
         "\" (L|G)*" + std::to_string(depth) + " d where d.title contains \"" +
         keyword + "\"";
}

TEST(ConcurrencyTest, ParallelQueriesAllCompleteIndependently) {
  web::SynthWebOptions web_options;
  web_options.seed = 64;
  web_options.num_sites = 6;
  web_options.docs_per_site = 8;
  const web::WebGraph web = web::GenerateSynthWeb(web_options);
  core::Engine engine(&web);

  // Submit five queries of varying depth before delivering anything.
  std::vector<query::QueryId> ids;
  std::vector<size_t> expected_rows;
  for (int depth = 1; depth <= 5; ++depth) {
    auto compiled = disql::CompileDisql(QueryFor(web, depth, "alpha"));
    ASSERT_TRUE(compiled.ok());
    auto id = engine.Submit(compiled.value(), "user" + std::to_string(depth));
    ASSERT_TRUE(id.ok());
    ids.push_back(id.value());
  }
  engine.network().RunUntilIdle();

  // Reference: the same queries run one at a time on a fresh deployment.
  for (int depth = 1; depth <= 5; ++depth) {
    core::Engine solo(&web);
    auto outcome = solo.Run(QueryFor(web, depth, "alpha"));
    ASSERT_TRUE(outcome.ok());
    expected_rows.push_back(outcome->TotalRows());
  }

  for (size_t i = 0; i < ids.size(); ++i) {
    const client::UserSite::QueryRun* run = engine.user_site().Find(ids[i]);
    ASSERT_NE(run, nullptr);
    EXPECT_TRUE(run->completed) << "query " << i;
    size_t rows = 0;
    for (const relational::ResultSet& rs : run->results) {
      rows += rs.rows.size();
    }
    EXPECT_EQ(rows, expected_rows[i]) << "query " << i;
  }
}

TEST(ConcurrencyTest, CancellingOneQueryLeavesOthersIntact) {
  web::CampusScenario scenario = web::BuildCampusScenario();
  core::EngineOptions options;
  options.network.inter_host_latency = 50 * kMillisecond;
  core::Engine engine(&scenario.web, options);
  auto compiled = disql::CompileDisql(scenario.disql);
  ASSERT_TRUE(compiled.ok());

  auto keep = engine.Submit(compiled.value(), "keeper");
  auto cancel = engine.Submit(compiled.value(), "canceller");
  ASSERT_TRUE(keep.ok());
  ASSERT_TRUE(cancel.ok());
  for (int i = 0; i < 3; ++i) engine.network().RunOne();
  engine.user_site().Cancel(cancel.value());
  engine.network().RunUntilIdle();

  const client::UserSite::QueryRun* kept = engine.user_site().Find(keep.value());
  const client::UserSite::QueryRun* cancelled =
      engine.user_site().Find(cancel.value());
  EXPECT_TRUE(kept->completed);
  EXPECT_EQ(kept->results.size(), 2u);  // both sections arrived
  EXPECT_TRUE(cancelled->cancelled);
  EXPECT_FALSE(cancelled->completed);
}

TEST(ConcurrencyTest, LogTablesAreKeyedPerQuery) {
  // The same user submits the same query twice; the second run must be
  // fully recomputed (log entries are per query id), not suppressed by the
  // first run's entries.
  web::Scenario scenario = web::BuildFig5Scenario();
  core::Engine engine(&scenario.web);
  auto first = engine.Run(scenario.disql);
  ASSERT_TRUE(first.ok());
  const uint64_t evals_after_first =
      engine.AggregateServerStats().node_queries_evaluated;
  auto second = engine.Run(scenario.disql);
  ASSERT_TRUE(second.ok());
  const uint64_t evals_after_second =
      engine.AggregateServerStats().node_queries_evaluated;
  EXPECT_EQ(first->TotalRows(), second->TotalRows());
  EXPECT_EQ(evals_after_second, 2 * evals_after_first);
}

TEST(ConcurrencyTest, MixedTerminationModesCoexist) {
  // One CHT query and one ack-tree query at the same time, on engines that
  // share a web but separate user sites are not needed — the option is
  // per-user-site, so run both sequentially against one engine per mode
  // while the OTHER engine's servers stay warm. (Within one engine, the
  // client options are uniform; this checks servers handle both clone
  // flavours back-to-back.)
  web::CampusScenario scenario = web::BuildCampusScenario();
  core::EngineOptions ack;
  ack.client.ack_tree_termination = true;
  core::Engine ack_engine(&scenario.web, ack);
  core::Engine cht_engine(&scenario.web);
  auto a = ack_engine.Run(scenario.disql);
  auto c = cht_engine.Run(scenario.disql);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(c.ok());
  EXPECT_TRUE(a->completed);
  EXPECT_TRUE(c->completed);
  EXPECT_EQ(a->TotalRows(), c->TotalRows());
}

}  // namespace
}  // namespace webdis
