#include <gtest/gtest.h>

#include "query/node_query.h"
#include "query/query_id.h"
#include "query/report.h"
#include "query/web_query.h"
#include "serialize/encoder.h"

namespace webdis::query {
namespace {

QueryId TestId() {
  QueryId id;
  id.user = "maya";
  id.reply_host = "user.site";
  id.reply_port = 9001;
  id.query_number = 3;
  return id;
}

TEST(QueryIdTest, KeyFormat) {
  EXPECT_EQ(TestId().Key(), "maya@user.site:9001#3");
}

TEST(QueryIdTest, RoundTrip) {
  serialize::Encoder enc;
  TestId().EncodeTo(&enc);
  serialize::Decoder dec(enc.data());
  QueryId out;
  ASSERT_TRUE(QueryId::DecodeFrom(&dec, &out).ok());
  EXPECT_EQ(out, TestId());
  EXPECT_TRUE(dec.AtEnd());
}

TEST(QueryIdTest, Equality) {
  QueryId a = TestId();
  QueryId b = TestId();
  EXPECT_TRUE(a == b);
  b.query_number = 4;
  EXPECT_FALSE(a == b);
}

NodeQuery TestNodeQuery() {
  NodeQuery nq;
  nq.doc_alias = "d0";
  nq.select.from = {{"document", "d0"}, {"relinfon", "r"}};
  nq.select.where = relational::Expr::Contains(
      relational::Expr::ColumnRef("r", "text"),
      relational::Expr::Literal(relational::Value(std::string("convener"))));
  nq.select.select = {{"d0", "url"}, {"r", "text"}};
  nq.select.distinct = true;
  return nq;
}

TEST(NodeQueryTest, CloneIsDeep) {
  NodeQuery original = TestNodeQuery();
  NodeQuery copy = original.Clone();
  EXPECT_EQ(copy.ToString(), original.ToString());
  EXPECT_NE(copy.select.where.get(), original.select.where.get());
}

TEST(NodeQueryTest, RoundTrip) {
  serialize::Encoder enc;
  TestNodeQuery().EncodeTo(&enc);
  serialize::Decoder dec(enc.data());
  NodeQuery out;
  ASSERT_TRUE(NodeQuery::DecodeFrom(&dec, &out).ok());
  EXPECT_EQ(out.ToString(), TestNodeQuery().ToString());
  EXPECT_TRUE(dec.AtEnd());
}

TEST(NodeQueryTest, RoundTripWithoutWhere) {
  NodeQuery nq = TestNodeQuery();
  nq.select.where = nullptr;
  serialize::Encoder enc;
  nq.EncodeTo(&enc);
  serialize::Decoder dec(enc.data());
  NodeQuery out;
  ASSERT_TRUE(NodeQuery::DecodeFrom(&dec, &out).ok());
  EXPECT_EQ(out.select.where, nullptr);
}

TEST(CloneStateTest, ToStringMatchesPaperNotation) {
  CloneState state{2, pre::Pre::Parse("G.L*1").value()};
  EXPECT_EQ(state.ToString(), "(2, G.L*1)");
}

TEST(CloneStateTest, Equals) {
  CloneState a{2, pre::Pre::Parse("G | L").value()};
  CloneState b{2, pre::Pre::Parse("L | G").value()};
  CloneState c{1, pre::Pre::Parse("G | L").value()};
  EXPECT_TRUE(a.Equals(b));
  EXPECT_FALSE(a.Equals(c));
}

WebQuery TestWebQuery() {
  WebQuery wq;
  wq.id = TestId();
  wq.remaining_queries.push_back(TestNodeQuery());
  NodeQuery q2 = TestNodeQuery();
  q2.doc_alias = "d1";
  wq.remaining_queries.push_back(std::move(q2));
  wq.future_pres.push_back(pre::Pre::Parse("G.(L*1)").value());
  wq.rem_pre = pre::Pre::Parse("L").value();
  wq.dest_urls = {"http://a/x", "http://a/y"};
  return wq;
}

TEST(WebQueryTest, ValidateAcceptsWellFormed) {
  EXPECT_TRUE(TestWebQuery().Validate().ok());
}

TEST(WebQueryTest, ValidateRejectsMalformed) {
  WebQuery no_queries = TestWebQuery();
  no_queries.remaining_queries.clear();
  no_queries.future_pres.clear();
  EXPECT_FALSE(no_queries.Validate().ok());

  WebQuery bad_pipeline = TestWebQuery();
  bad_pipeline.future_pres.push_back(pre::Pre::Parse("L").value());
  EXPECT_FALSE(bad_pipeline.Validate().ok());

  WebQuery no_dest = TestWebQuery();
  no_dest.dest_urls.clear();
  EXPECT_FALSE(no_dest.Validate().ok());
}

TEST(WebQueryTest, StateReflectsPipeline) {
  const WebQuery wq = TestWebQuery();
  EXPECT_EQ(wq.State().num_q, 2u);
  EXPECT_TRUE(wq.State().rem_pre.Equals(pre::Pre::Parse("L").value()));
}

TEST(WebQueryTest, RoundTrip) {
  const WebQuery wq = TestWebQuery();
  serialize::Encoder enc;
  wq.EncodeTo(&enc);
  EXPECT_EQ(enc.size(), wq.WireSize());
  serialize::Decoder dec(enc.data());
  WebQuery out;
  ASSERT_TRUE(WebQuery::DecodeFrom(&dec, &out).ok());
  EXPECT_EQ(out.id, wq.id);
  EXPECT_EQ(out.dest_urls, wq.dest_urls);
  EXPECT_EQ(out.remaining_queries.size(), 2u);
  EXPECT_TRUE(out.State().Equals(wq.State()));
  EXPECT_TRUE(dec.AtEnd());
}

TEST(WebQueryTest, DecodeRejectsTruncation) {
  const WebQuery wq = TestWebQuery();
  serialize::Encoder enc;
  wq.EncodeTo(&enc);
  for (size_t cut : {size_t{1}, enc.size() / 2, enc.size() - 1}) {
    serialize::Decoder dec(enc.data().data(), cut);
    WebQuery out;
    EXPECT_FALSE(WebQuery::DecodeFrom(&dec, &out).ok()) << cut;
  }
}

TEST(WebQueryTest, CloneIsDeep) {
  const WebQuery wq = TestWebQuery();
  WebQuery copy = wq.Clone();
  EXPECT_EQ(copy.dest_urls, wq.dest_urls);
  EXPECT_NE(copy.remaining_queries[0].select.where.get(),
            wq.remaining_queries[0].select.where.get());
}

QueryReport TestReport() {
  QueryReport qr;
  qr.id = TestId();
  NodeReport nr;
  nr.node_url = "http://a/x";
  nr.received_state = CloneState{2, pre::Pre::Parse("L").value()};
  nr.next_entries.push_back(
      ChtEntry{"http://b/y", CloneState{1, pre::Pre::Parse("G").value()}});
  relational::ResultSet rs;
  rs.column_labels = {"d0.url"};
  rs.rows.push_back({relational::Value(std::string("http://a/x"))});
  nr.result_sets.push_back(std::move(rs));
  qr.node_reports.push_back(std::move(nr));

  NodeReport drop;
  drop.node_url = "http://b/z";
  drop.received_state = CloneState{1, pre::Pre::Parse("G").value()};
  drop.duplicate_drop = true;
  qr.node_reports.push_back(std::move(drop));
  return qr;
}

TEST(ReportTest, RoundTrip) {
  const QueryReport qr = TestReport();
  serialize::Encoder enc;
  qr.EncodeTo(&enc);
  serialize::Decoder dec(enc.data());
  QueryReport out;
  ASSERT_TRUE(QueryReport::DecodeFrom(&dec, &out).ok());
  EXPECT_EQ(out.id, qr.id);
  ASSERT_EQ(out.node_reports.size(), 2u);
  EXPECT_EQ(out.node_reports[0].node_url, "http://a/x");
  ASSERT_EQ(out.node_reports[0].next_entries.size(), 1u);
  EXPECT_EQ(out.node_reports[0].next_entries[0].node_url, "http://b/y");
  ASSERT_EQ(out.node_reports[0].result_sets.size(), 1u);
  EXPECT_EQ(out.node_reports[0].result_sets[0].rows.size(), 1u);
  EXPECT_TRUE(out.node_reports[1].duplicate_drop);
  EXPECT_TRUE(dec.AtEnd());
}

TEST(ReportTest, UndeliverableFlagRoundTrips) {
  QueryReport qr;
  qr.id = TestId();
  NodeReport nr;
  nr.node_url = "http://dead/x";
  nr.received_state = CloneState{1, pre::Pre::Parse("L").value()};
  nr.undeliverable = true;
  qr.node_reports.push_back(std::move(nr));
  serialize::Encoder enc;
  qr.EncodeTo(&enc);
  serialize::Decoder dec(enc.data());
  QueryReport out;
  ASSERT_TRUE(QueryReport::DecodeFrom(&dec, &out).ok());
  EXPECT_TRUE(out.node_reports[0].undeliverable);
}

TEST(ReportTest, DecodeRejectsGarbage) {
  const std::vector<uint8_t> garbage{1, 2, 3};
  serialize::Decoder dec(garbage);
  QueryReport out;
  EXPECT_FALSE(QueryReport::DecodeFrom(&dec, &out).ok());
}

}  // namespace
}  // namespace webdis::query
