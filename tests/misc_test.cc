// Coverage for the corners: logging levels, PRE parser limits, timeout
// completion with zero arrivals, CHECK death, clone size accounting.
#include <gtest/gtest.h>

#include "common/logging.h"
#include "core/engine.h"
#include "pre/pre.h"
#include "web/topologies.h"

namespace webdis {
namespace {

TEST(LoggingTest, LevelGateRoundTrips) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  // Below-threshold logging must be a no-op (and must compile/stream fine).
  WEBDIS_LOG(kDebug) << "invisible " << 42;
  WEBDIS_LOG(kInfo) << "also invisible";
  SetLogLevel(LogLevel::kOff);
  WEBDIS_LOG(kError) << "even errors silenced";
  SetLogLevel(original);
}

TEST(CheckDeathTest, CheckFailureAborts) {
  EXPECT_DEATH({ WEBDIS_CHECK(1 == 2) << "boom"; }, "CHECK failed");
}

TEST(PreLimitsTest, HugeRepetitionBoundRejected) {
  EXPECT_FALSE(pre::Pre::Parse("L*2000000").ok());
  // The largest accepted bound still round-trips.
  auto big = pre::Pre::Parse("L*1000000");
  ASSERT_TRUE(big.ok());
  EXPECT_TRUE(big->ContainsNull());
}

TEST(TimeoutModeTest, NoArrivalsBasesTimeoutOnSubmitTime) {
  // A query whose StartNode site does not exist: no report ever arrives;
  // the timeout clock runs from submission.
  web::CampusScenario scenario = web::BuildCampusScenario();
  core::EngineOptions options;
  options.client.use_cht = false;
  options.fallback_processing = false;
  options.completion_timeout = 3 * kSecond;
  core::Engine engine(&scenario.web, options);
  auto compiled = disql::CompileDisql(
      "select d.url from document d such that \"http://ghost.example/\" L d");
  ASSERT_TRUE(compiled.ok());
  auto id = engine.Submit(compiled.value());
  ASSERT_TRUE(id.ok());
  engine.network().RunUntilIdle();
  engine.user_site().FinishWithTimeout(id.value(), 3 * kSecond);
  const client::UserSite::QueryRun* run = engine.user_site().Find(id.value());
  EXPECT_TRUE(run->completed);
  EXPECT_EQ(run->completion_time, run->submit_time + 3 * kSecond);
}

TEST(CloneSizeTest, WireSizeGrowsWithDestinationsNotWithWebSize) {
  auto compiled = disql::CompileDisql(
      "select d.url from document d such that \"http://a/\" (L|G)*3 d");
  ASSERT_TRUE(compiled.ok());
  query::WebQuery one = compiled->web_query.Clone();
  one.dest_urls = {"http://a/x"};
  query::WebQuery many = compiled->web_query.Clone();
  for (int i = 0; i < 10; ++i) {
    many.dest_urls.push_back("http://a/x" + std::to_string(i));
  }
  EXPECT_GT(many.WireSize(), one.WireSize());
  // Each extra destination costs only its URL string + varint, nothing
  // proportional to query complexity.
  EXPECT_LT(many.WireSize(), one.WireSize() + 10 * 32);
}

TEST(EngineAccessorsTest, ServerLookupAndParticipants) {
  web::CampusScenario scenario = web::BuildCampusScenario();
  core::Engine engine(&scenario.web);
  EXPECT_EQ(engine.participating_hosts().size(),
            scenario.web.Hosts().size());
  EXPECT_NE(engine.server_for("www.csa.iisc.ernet.in"), nullptr);
  EXPECT_EQ(engine.server_for("not-a-host.example"), nullptr);
}

}  // namespace
}  // namespace webdis
