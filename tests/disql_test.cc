#include <gtest/gtest.h>

#include "disql/ast.h"
#include "disql/compiler.h"
#include "disql/lexer.h"
#include "serialize/encoder.h"

namespace webdis::disql {
namespace {

// -- Lexer ----------------------------------------------------------------------

TEST(LexerTest, KeywordsCaseInsensitive) {
  auto tokens = Lex("SELECT from Where DOCUMENT");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 5u);  // 4 + end
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ((*tokens)[static_cast<size_t>(i)].kind, TokenKind::kKeyword);
  }
  EXPECT_EQ((*tokens)[0].text, "select");
  EXPECT_EQ((*tokens)[3].text, "document");
}

TEST(LexerTest, IdentifiersKeepCase) {
  auto tokens = Lex("d0 myAlias");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kIdent);
  EXPECT_EQ((*tokens)[1].text, "myAlias");
}

TEST(LexerTest, StringsAndNumbers) {
  auto tokens = Lex("\"http://x/y\" 42");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kString);
  EXPECT_EQ((*tokens)[0].text, "http://x/y");
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kNumber);
  EXPECT_EQ((*tokens)[1].number, 42u);
}

TEST(LexerTest, OperatorsAndPunctuation) {
  auto tokens = Lex(", . * | ( ) = != <> < <= > >=");
  ASSERT_TRUE(tokens.ok());
  const std::vector<TokenKind> expected{
      TokenKind::kComma, TokenKind::kDot,   TokenKind::kStar,
      TokenKind::kPipe,  TokenKind::kLParen, TokenKind::kRParen,
      TokenKind::kEq,    TokenKind::kNe,    TokenKind::kNe,
      TokenKind::kLt,    TokenKind::kLe,    TokenKind::kGt,
      TokenKind::kGe,    TokenKind::kEnd};
  ASSERT_EQ(tokens->size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ((*tokens)[i].kind, expected[i]) << i;
  }
}

TEST(LexerTest, MiddleDotIsDot) {
  auto tokens = Lex("G\xC2\xB7L");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 4u);
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kDot);
}

TEST(LexerTest, CommentsSkipped) {
  auto tokens = Lex("select -- this is a comment\n d0");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 3u);
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Lex("\"unterminated").ok());
  EXPECT_FALSE(Lex("a ! b").ok());
  EXPECT_FALSE(Lex("$").ok());
  EXPECT_FALSE(Lex("99999999999999999999").ok());
}

// -- Parser ---------------------------------------------------------------------

constexpr const char* kExample1 =
    "select a.base, a.href\n"
    "from document d such that \"http://dsl.serc.iisc.ernet.in\" L* d\n"
    "     anchor a\n"
    "where a.ltype = \"G\"\n";

constexpr const char* kExample2 =
    "select d0.url, d1.url, r.text\n"
    "from document d0 such that \"http://csa.iisc.ernet.in\" L d0,\n"
    "where d0.title contains \"lab\"\n"
    "    document d1 such that d0 G.(L*1) d1,\n"
    "    relinfon r such that r.delimiter = \"hr\",\n"
    "where (r.text contains \"convener\")\n";

TEST(ParserTest, PaperExampleQuery1) {
  auto q = ParseDisql(kExample1);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->select.size(), 2u);
  EXPECT_EQ(q->select[0].Label(), "a.base");
  ASSERT_EQ(q->steps.size(), 1u);
  const Step& step = q->steps[0];
  EXPECT_EQ(step.doc_alias, "d");
  ASSERT_EQ(step.start_urls.size(), 1u);
  EXPECT_EQ(step.start_urls[0], "http://dsl.serc.iisc.ernet.in");
  EXPECT_TRUE(step.pre.Equals(pre::Pre::Parse("L*").value()));
  ASSERT_EQ(step.aux.size(), 1u);
  EXPECT_EQ(step.aux[0].relation, "anchor");
  EXPECT_EQ(step.aux[0].alias, "a");
  ASSERT_NE(step.where, nullptr);
  EXPECT_EQ(step.where->ToString(), "(a.ltype = \"G\")");
}

TEST(ParserTest, PaperExampleQuery2) {
  auto q = ParseDisql(kExample2);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->steps.size(), 2u);
  const Step& s0 = q->steps[0];
  EXPECT_EQ(s0.doc_alias, "d0");
  EXPECT_TRUE(s0.pre.Equals(pre::Pre::Parse("L").value()));
  EXPECT_EQ(s0.where->ToString(), "(d0.title contains \"lab\")");
  const Step& s1 = q->steps[1];
  EXPECT_EQ(s1.doc_alias, "d1");
  EXPECT_EQ(s1.source_alias, "d0");
  EXPECT_TRUE(s1.pre.Equals(pre::Pre::Parse("G.(L*1)").value()));
  ASSERT_EQ(s1.aux.size(), 1u);
  EXPECT_EQ(s1.aux[0].relation, "relinfon");
  EXPECT_EQ(s1.aux[0].such_that->ToString(), "(r.delimiter = \"hr\")");
  EXPECT_EQ(s1.where->ToString(), "(r.text contains \"convener\")");
}

TEST(ParserTest, MultipleStartNodes) {
  auto q = ParseDisql(
      "select d.url from document d such that "
      "(\"http://a/\", \"http://b/\") L*1 d");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->steps[0].start_urls,
            (std::vector<std::string>{"http://a/", "http://b/"}));
}

TEST(ParserTest, ToStringReparses) {
  for (const char* text : {kExample1, kExample2}) {
    auto q = ParseDisql(text);
    ASSERT_TRUE(q.ok());
    auto again = ParseDisql(q->ToString());
    ASSERT_TRUE(again.ok()) << q->ToString() << "\n"
                            << again.status().ToString();
    EXPECT_EQ(q->ToString(), again->ToString());
  }
}

TEST(ParserTest, ErrorMissingSelect) {
  EXPECT_FALSE(ParseDisql("from document d such that \"u\" L d").ok());
}

TEST(ParserTest, ErrorTargetAliasMismatch) {
  auto q = ParseDisql("select d.url from document d such that \"u\" L e");
  EXPECT_FALSE(q.ok());
  EXPECT_NE(q.status().message().find("does not match"), std::string::npos);
}

TEST(ParserTest, ErrorLinkSymbolAlias) {
  EXPECT_FALSE(
      ParseDisql("select L.url from document L such that \"u\" G L").ok());
}

TEST(ParserTest, ErrorNoSteps) {
  EXPECT_FALSE(ParseDisql("select a.b from").ok());
}

TEST(ParserTest, ErrorTrailingGarbage) {
  EXPECT_FALSE(
      ParseDisql("select d.url from document d such that \"u\" L d banana")
          .ok());
}

// -- Compiler ---------------------------------------------------------------------

TEST(CompilerTest, Example2SplitsSelectAcrossNodeQueries) {
  auto compiled = CompileDisql(kExample2);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  const query::WebQuery& wq = compiled->web_query;
  ASSERT_EQ(wq.remaining_queries.size(), 2u);
  ASSERT_EQ(wq.future_pres.size(), 1u);
  // q1 projects only d0.url.
  EXPECT_EQ(wq.remaining_queries[0].select.select.size(), 1u);
  EXPECT_EQ(wq.remaining_queries[0].select.select[0].Label(), "d0.url");
  // q2 projects d1.url and r.text.
  ASSERT_EQ(wq.remaining_queries[1].select.select.size(), 2u);
  EXPECT_EQ(wq.remaining_queries[1].select.select[0].Label(), "d1.url");
  EXPECT_EQ(wq.remaining_queries[1].select.select[1].Label(), "r.text");
  // q2's where merges the relinfon such-that with the step where.
  EXPECT_NE(wq.remaining_queries[1].select.where, nullptr);
  const std::string where = wq.remaining_queries[1].select.where->ToString();
  EXPECT_NE(where.find("r.delimiter"), std::string::npos);
  EXPECT_NE(where.find("convener"), std::string::npos);
  // PRE pipeline: rem = L, future = G.(L*1).
  EXPECT_TRUE(wq.rem_pre.Equals(pre::Pre::Parse("L").value()));
  EXPECT_TRUE(wq.future_pres[0].Equals(pre::Pre::Parse("G.(L*1)").value()));
  // The formal notation renders.
  EXPECT_NE(compiled->ToString().find("Q = {http://csa.iisc.ernet.in}"),
            std::string::npos);
}

TEST(CompilerTest, StepWithNoSelectedColumnsProjectsUrl) {
  auto compiled = CompileDisql(
      "select d1.url\n"
      "from document d0 such that \"http://a/\" L d0,\n"
      "where d0.title contains \"x\"\n"
      "     document d1 such that d0 G d1\n");
  ASSERT_TRUE(compiled.ok());
  // d0 has no user columns; the compiler projects d0.url so the
  // answer-found test is meaningful.
  EXPECT_EQ(compiled->web_query.remaining_queries[0].select.select[0].Label(),
            "d0.url");
}

TEST(CompilerTest, ErrorChainBroken) {
  auto compiled = CompileDisql(
      "select d1.url\n"
      "from document d0 such that \"http://a/\" L d0,\n"
      "     document d1 such that dX G d1\n");
  EXPECT_FALSE(compiled.ok());
  EXPECT_NE(compiled.status().message().find("chain"), std::string::npos);
}

TEST(CompilerTest, ErrorDuplicateAlias) {
  EXPECT_FALSE(CompileDisql(
                   "select d.url\n"
                   "from document d such that \"http://a/\" L d,\n"
                   "     anchor d\n")
                   .ok());
}

TEST(CompilerTest, ErrorCrossStepPredicate) {
  // d0 referenced in step 2's where: node-queries must be locally evaluable.
  auto compiled = CompileDisql(
      "select d1.url\n"
      "from document d0 such that \"http://a/\" L d0,\n"
      "     document d1 such that d0 G d1,\n"
      "where d0.title contains \"x\"\n");
  EXPECT_FALSE(compiled.ok());
  EXPECT_NE(compiled.status().message().find("locally"), std::string::npos);
}

TEST(CompilerTest, ErrorUnknownColumn) {
  EXPECT_FALSE(CompileDisql(
                   "select d.bogus\n"
                   "from document d such that \"http://a/\" L d\n")
                   .ok());
  EXPECT_FALSE(CompileDisql(
                   "select d.url\n"
                   "from document d such that \"http://a/\" L d,\n"
                   "where d.nope = \"x\"\n")
                   .ok());
}

TEST(CompilerTest, ErrorSelectUndeclaredAlias) {
  EXPECT_FALSE(CompileDisql(
                   "select z.url\n"
                   "from document d such that \"http://a/\" L d\n")
                   .ok());
}

TEST(CompilerTest, ExplainRendersEveryStage) {
  auto compiled = CompileDisql(kExample2);
  ASSERT_TRUE(compiled.ok());
  const std::string plan = ExplainQuery(compiled.value());
  EXPECT_NE(plan.find("StartNodes (1)"), std::string::npos);
  EXPECT_NE(plan.find("stage 1"), std::string::npos);
  EXPECT_NE(plan.find("stage 2"), std::string::npos);
  EXPECT_NE(plan.find("PRE: L"), std::string::npos);
  EXPECT_NE(plan.find("PRE: G.L*1"), std::string::npos);
  // Stage 1's PRE L is not nullable; stage 2's G.(L*1) is not either.
  EXPECT_NE(plan.find("evaluated at traversal distance zero: no"),
            std::string::npos);
  EXPECT_NE(plan.find("fans out on link types: {L}"), std::string::npos);
  EXPECT_NE(plan.find("clone wire size"), std::string::npos);
}

TEST(CompilerTest, ExplainShowsNullableStage) {
  auto compiled = CompileDisql(
      "select d.url from document d such that \"http://a/\" L*2 d");
  ASSERT_TRUE(compiled.ok());
  const std::string plan = ExplainQuery(compiled.value());
  EXPECT_NE(plan.find("evaluated at traversal distance zero: yes"),
            std::string::npos);
}

TEST(CompilerTest, CompiledWebQuerySerializes) {
  auto compiled = CompileDisql(kExample2);
  ASSERT_TRUE(compiled.ok());
  query::WebQuery wq = compiled->web_query.Clone();
  wq.dest_urls.push_back("http://csa.iisc.ernet.in/");
  serialize::Encoder enc;
  wq.EncodeTo(&enc);
  serialize::Decoder dec(enc.data());
  query::WebQuery out;
  ASSERT_TRUE(query::WebQuery::DecodeFrom(&dec, &out).ok());
  EXPECT_EQ(out.remaining_queries.size(), 2u);
  EXPECT_TRUE(out.rem_pre.Equals(wq.rem_pre));
  EXPECT_EQ(out.remaining_queries[1].ToString(),
            wq.remaining_queries[1].ToString());
}

}  // namespace
}  // namespace webdis::disql
