// Determinism proof for the parallel stepper (DESIGN.md "Parallel
// execution"): a run under SimNetworkOptions::worker_threads = N must be
// bit-identical — results, run stats, traffic meters, and the named
// degradation sets — to the sequential stepper (N = 1) and to the legacy
// event loop (N = 0), for every seed, including schedules composed with
// fault injection and overload protection. The comparison is a full textual
// signature of everything an outcome exposes, so any divergence in any
// counter fails loudly with the two signatures side by side.
//
// This suite also runs under TSan in CI (with real worker threads), which is
// what checks the confinement rule — that concurrent partitions of a slice
// never touch shared state unsynchronized.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/clock.h"
#include "common/rng.h"
#include "common/strings.h"
#include "core/engine.h"
#include "disql/compiler.h"
#include "net/fault.h"
#include "net/sim.h"
#include "web/synth.h"

namespace webdis {
namespace {

struct Workload {
  std::string name;
  uint64_t seed = 1;
  bool faults = false;    // drop/dup/delay schedule + at-least-once retry
  bool overload = false;  // admission queue + budgets + a hot-host override
  int queries = 1;        // concurrent submissions sharing the network
  // With zero jitter, same-hop messages to different hosts arrive in one
  // wavefront, producing wide multi-partition slices (the interesting case
  // for the stepper); with jitter, arrivals scatter to distinct timestamps
  // and most slices are singletons. Both must be bit-identical.
  bool jitter = true;
  // Adaptive slice coalescing (SimNetworkOptions::coalesce_slices). Off is
  // the pre-coalescing commit-per-slice stepper, kept as the equivalence
  // reference for the coalescing suites below.
  bool coalesce = true;
};

std::string SummarizeTraffic(const core::TrafficSummary& t) {
  return StringPrintf(
      "msgs=%llu bytes=%llu inter=%llu/%llu q=%llu/%llu r=%llu/%llu "
      "f=%llu/%llu term=%llu refused=%llu",
      (unsigned long long)t.messages, (unsigned long long)t.bytes,
      (unsigned long long)t.inter_host_messages,
      (unsigned long long)t.inter_host_bytes,
      (unsigned long long)t.query_messages, (unsigned long long)t.query_bytes,
      (unsigned long long)t.report_messages,
      (unsigned long long)t.report_bytes, (unsigned long long)t.fetch_messages,
      (unsigned long long)t.fetch_bytes,
      (unsigned long long)t.terminate_messages,
      (unsigned long long)t.connection_refused);
}

/// Everything observable about an outcome except the stepper's own
/// concurrency counters (workers / parallel occupancy legitimately differ
/// between modes; nothing else may).
std::string SummarizeOutcome(const core::RunOutcome& outcome) {
  std::string out;
  out += StringPrintf(
      "completed=%d partial=%d budget_exhausted=%d rows=%zu "
      "submit=%llu done=%llu last=%llu cht=%zu/%zu/%llu/%llu fallback=%zu\n",
      outcome.completed ? 1 : 0, outcome.partial ? 1 : 0,
      outcome.budget_exhausted ? 1 : 0, outcome.TotalRows(),
      (unsigned long long)outcome.submit_time,
      (unsigned long long)outcome.completion_time,
      (unsigned long long)outcome.last_report_time,
      outcome.cht_total_entries, outcome.cht_max_active,
      (unsigned long long)outcome.cht_suppressed,
      (unsigned long long)outcome.cht_unmatched_deletes,
      outcome.fallback_node_count);
  out += "unreachable:";
  for (const std::string& host : outcome.unreachable_hosts) out += " " + host;
  out += "\nbudget_nodes:";
  for (const std::string& n : outcome.budget_exceeded_nodes) out += " " + n;
  out += "\n";
  out += core::FormatResults(outcome.results);
  // FormatRunStats appends a "parallel:" line when workers > 0; every other
  // line must match across modes.
  for (const std::string& line :
       Split(core::FormatRunStats(outcome), '\n')) {
    if (line.rfind("parallel:", 0) == 0) continue;
    out += line + "\n";
  }
  out += "traffic: " + SummarizeTraffic(outcome.traffic) + "\n";
  return out;
}

std::string QueryFor(int index) {
  // Vary start node and pattern a little per concurrent query so the batch
  // is not N copies of one schedule.
  const std::string start = web::SynthUrl(index % 3, index % 2);
  const std::string pattern =
      (index % 2 == 0) ? "(L|G)*2" : "G.(L|G)*1";
  return "select d1.url, d1.title\n"
         "from document d1 such that \"" +
         start + "\" " + pattern +
         " d1,\n"
         "where d1.title contains \"alpha\"\n";
}

/// Runs the workload with the given stepper mode and returns (signature,
/// parallel stats). The signature must not depend on `workers`.
std::string RunWorkload(const Workload& w, size_t workers,
                        net::ParallelStats* parallel_out = nullptr) {
  web::SynthWebOptions web_options;
  web_options.seed = w.seed;
  web_options.num_sites = 5;
  web_options.docs_per_site = 6;
  web_options.filler_paragraphs = 1;
  web_options.words_per_paragraph = 12;
  const web::WebGraph web = web::GenerateSynthWeb(web_options);

  core::EngineOptions options;
  options.network.worker_threads = workers;
  options.network.coalesce_slices = w.coalesce;
  options.network.latency_jitter = w.jitter ? 2 * kMillisecond : 0;
  options.network.jitter_seed = w.seed * 31 + 7;
  if (w.faults) {
    options.server.retry.enabled = true;
    options.client.retry.enabled = true;
  }
  if (w.overload) {
    options.client.budget_max_hops = 6;
    options.client.budget_max_clones = 64;
    options.client.budget_max_rows_per_visit = 8;
    options.server.admission.max_pending = 4;
    options.server.admission.service_time = 2 * kMillisecond;
    // One deliberately hot host with a tiny queue exercises shedding and
    // eviction under both steppers.
    server::QueryServerOptions hot = options.server;
    hot.admission.max_pending = 1;
    options.server_overrides[web::SynthHost(1)] = hot;
  }
  core::Engine engine(&web, options);

  net::FaultPlan plan(w.seed * 97 + 13);
  if (w.faults) {
    Rng rng(w.seed * 7919);
    for (net::MessageType type :
         {net::MessageType::kWebQuery, net::MessageType::kReport,
          net::MessageType::kDeliveryAck}) {
      net::FaultPlan::Rule rule;
      rule.type = type;
      rule.drop_prob = 0.02 + 0.10 * rng.NextDouble();
      rule.duplicate_prob = 0.08 * rng.NextDouble();
      plan.AddRule(rule);
    }
    net::FaultPlan::Rule delay_rule;
    delay_rule.type = net::MessageType::kReport;
    delay_rule.delay_prob = 0.25;
    delay_rule.delay = rng.UniformRange(1, 8) * kMillisecond;
    plan.AddRule(delay_rule);
    engine.network().SetFaultPlan(&plan);
  }

  const core::TrafficSummary before = engine.TrafficSnapshot();
  std::vector<query::QueryId> ids;
  for (int i = 0; i < w.queries; ++i) {
    auto compiled = disql::CompileDisql(QueryFor(i));
    EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
    if (!compiled.ok()) return "compile error";
    auto id = engine.Submit(compiled.value(), "user" + std::to_string(i));
    EXPECT_TRUE(id.ok()) << id.status().ToString();
    if (!id.ok()) return "submit error";
    ids.push_back(id.value());
  }
  engine.network().RunUntilIdle();

  std::string signature;
  for (const query::QueryId& id : ids) {
    signature += SummarizeOutcome(engine.CollectOutcome(id, before));
    signature += "----\n";
  }
  if (parallel_out != nullptr) {
    *parallel_out = engine.network().parallel_stats();
  }
  return signature;
}

void ExpectBitIdentical(const Workload& w) {
  SCOPED_TRACE(w.name + " seed=" + std::to_string(w.seed));
  const std::string legacy = RunWorkload(w, 0);
  for (size_t workers : {size_t{1}, size_t{2}, size_t{4}}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    EXPECT_EQ(legacy, RunWorkload(w, workers));
  }
}

TEST(ParallelDeterminismTest, PlainWorkloadAcrossSeeds) {
  for (uint64_t seed = 1; seed <= 16; ++seed) {
    ExpectBitIdentical({.name = "plain", .seed = seed});
  }
}

TEST(ParallelDeterminismTest, WavefrontWorkloadAcrossSeeds) {
  for (uint64_t seed = 1; seed <= 16; ++seed) {
    ExpectBitIdentical(
        {.name = "wavefront", .seed = seed, .queries = 4, .jitter = false});
  }
}

TEST(ParallelDeterminismTest, MultiQueryAcrossSeeds) {
  for (uint64_t seed = 1; seed <= 16; ++seed) {
    ExpectBitIdentical({.name = "multiquery", .seed = seed, .queries = 4});
  }
}

TEST(ParallelDeterminismTest, ComposedWithFaultSchedules) {
  for (uint64_t seed = 1; seed <= 16; ++seed) {
    ExpectBitIdentical(
        {.name = "faults", .seed = seed, .faults = true, .queries = 2});
    ExpectBitIdentical({.name = "faults-wavefront",
                        .seed = seed,
                        .faults = true,
                        .queries = 2,
                        .jitter = false});
  }
}

TEST(ParallelDeterminismTest, ComposedWithOverloadSchedules) {
  for (uint64_t seed = 1; seed <= 16; ++seed) {
    ExpectBitIdentical({.name = "overload",
                        .seed = seed,
                        .overload = true,
                        .queries = 3,
                        .jitter = false});
  }
}

TEST(ParallelDeterminismTest, ComposedWithFaultsAndOverload) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    ExpectBitIdentical({.name = "both",
                        .seed = seed,
                        .faults = true,
                        .overload = true,
                        .queries = 2});
  }
}

// The determinism theorems above would be vacuous if the stepper never
// actually ran anything in parallel: prove the workloads exercise
// multi-partition slices.
TEST(ParallelDeterminismTest, ParallelSlicesActuallyHappen) {
  net::ParallelStats stats;
  (void)RunWorkload(
      {.name = "occupancy", .seed = 3, .queries = 4, .jitter = false}, 4,
      &stats);
  EXPECT_GT(stats.slices, 0u);
  EXPECT_GT(stats.parallel_slices, 0u);
  EXPECT_GT(stats.Occupancy(), 0.05);
  EXPECT_GE(stats.max_slice_partitions, 2u);
}

// Legacy mode must not pay for the stepper: no pool, zero parallel stats.
TEST(ParallelDeterminismTest, LegacyModeReportsNoParallelism) {
  net::ParallelStats stats;
  (void)RunWorkload({.name = "legacy", .seed = 3}, 0, &stats);
  EXPECT_EQ(stats.slices, 0u);
  EXPECT_EQ(stats.events, 0u);
}

// -- Adaptive slice coalescing ----------------------------------------------
//
// Coalescing merges consecutive non-interacting slices into one fork/join
// batch (DESIGN.md §8). It is purely an execution strategy: for every seed,
// the coalesced stepper must produce byte-identical outcomes to the
// commit-per-slice stepper and to the legacy loop, at every worker count,
// including under composed fault and overload schedules.

TEST(CoalescingTest, CoalescedMatchesUncoalescedAcrossSeeds) {
  for (uint64_t seed = 1; seed <= 16; ++seed) {
    Workload w{.name = "coalesce-faults-overload",
               .seed = seed,
               .faults = true,
               .overload = true,
               .queries = 2,
               .jitter = false};
    SCOPED_TRACE(w.name + " seed=" + std::to_string(seed));
    w.coalesce = false;
    const std::string reference = RunWorkload(w, 0);
    for (bool coalesce : {false, true}) {
      for (size_t workers : {size_t{0}, size_t{1}, size_t{2}, size_t{4}}) {
        SCOPED_TRACE(StringPrintf("coalesce=%d workers=%zu",
                                  coalesce ? 1 : 0, workers));
        w.coalesce = coalesce;
        EXPECT_EQ(reference, RunWorkload(w, workers));
      }
    }
  }
}

TEST(CoalescingTest, CoalescedMatchesUncoalescedWithJitter) {
  // Jittered arrivals scatter slices to distinct timestamps — mostly
  // singleton slices, the regime where coalescing does its real work.
  for (uint64_t seed = 1; seed <= 16; ++seed) {
    Workload w{.name = "coalesce-jitter",
               .seed = seed,
               .faults = true,
               .queries = 2};
    SCOPED_TRACE(w.name + " seed=" + std::to_string(seed));
    w.coalesce = false;
    const std::string reference = RunWorkload(w, 0);
    w.coalesce = true;
    for (size_t workers : {size_t{1}, size_t{2}, size_t{4}}) {
      SCOPED_TRACE("workers=" + std::to_string(workers));
      EXPECT_EQ(reference, RunWorkload(w, workers));
    }
  }
}

// The equivalence above would be vacuous if the workloads never coalesced:
// prove batches actually absorb multiple slices, and that the off switch
// really disables the machinery.
TEST(CoalescingTest, CoalescedBatchesActuallyHappen) {
  net::ParallelStats stats;
  (void)RunWorkload(
      {.name = "coalesce-on", .seed = 3, .queries = 4, .jitter = false}, 2,
      &stats);
  EXPECT_GT(stats.coalesced_batches, 0u);
  // Each coalesced batch absorbed >= 2 slices by definition.
  EXPECT_GE(stats.coalesced_slices, 2 * stats.coalesced_batches);

  net::ParallelStats off;
  Workload w{.name = "coalesce-off", .seed = 3, .queries = 4,
             .jitter = false};
  w.coalesce = false;
  (void)RunWorkload(w, 2, &off);
  EXPECT_EQ(off.coalesced_batches, 0u);
  EXPECT_EQ(off.coalesced_slices, 0u);
}

// Targeted non-interaction unit on a raw SimNetwork. Two deliveries are
// queued 50 us apart (A at t=100, B at t=150). A's handler schedules a
// 20 us timer — a buffered effect landing at t=120, *before* B's slice — so
// the stepper must refuse to pull B's slice into A's batch: committing A
// first lets the timer fire at its correct virtual time. The observable
// order A@100, timer@120, B@150 is exactly what the legacy loop produces;
// a stepper that wrongly coalesced would run B's handler before the timer
// existed and log B@150 ahead of timer@120.
TEST(CoalescingTest, InteractingSlicePairDoesNotCoalesce) {
  struct LogEntry {
    std::string what;
    SimTime at;
  };
  auto run = [](bool schedule_timer, size_t workers,
                net::ParallelStats* stats_out) {
    net::SimNetworkOptions opts;
    opts.same_host_latency = 100;   // us
    opts.inter_host_latency = 150;  // us
    opts.bandwidth_bytes_per_sec = 0;
    opts.latency_jitter = 0;
    opts.worker_threads = workers;
    // Floors at 1 so even singleton slices take the stepper (and thus the
    // coalescing) path — this unit tests batching, not the fallback.
    opts.min_parallel_partitions = 1;
    opts.min_parallel_events = 1;
    net::SimNetwork net(opts);

    std::vector<LogEntry> log;
    const net::Endpoint a{"a", 1};
    const net::Endpoint b{"b", 1};
    EXPECT_TRUE(net.Listen(a, [&](const net::Endpoint&, net::MessageType,
                                  const std::vector<uint8_t>&) {
                    log.push_back({"A", net.now()});
                    if (schedule_timer) {
                      net.ScheduleAfter(20, [&] {
                        log.push_back({"timer", net.now()});
                      });
                    }
                  }).ok());
    EXPECT_TRUE(net.Listen(b, [&](const net::Endpoint&, net::MessageType,
                                  const std::vector<uint8_t>&) {
                    log.push_back({"B", net.now()});
                  }).ok());
    // Same-host send -> A lands at 100; inter-host send -> B lands at 150.
    EXPECT_TRUE(net.Send(a, a, net::MessageType::kWebQuery, {}).ok());
    EXPECT_TRUE(net.Send(a, b, net::MessageType::kWebQuery, {}).ok());
    net.RunUntilIdle();
    if (stats_out != nullptr) *stats_out = net.parallel_stats();
    std::string flat;
    for (const LogEntry& e : log) {
      flat += e.what + "@" + std::to_string(e.at) + " ";
    }
    return flat;
  };

  // Control: with no buffered effect the two slices are non-interacting and
  // the stepper does coalesce them into one batch.
  net::ParallelStats control;
  EXPECT_EQ(run(false, 2, &control), "A@100 B@150 ");
  EXPECT_EQ(control.coalesced_batches, 1u);
  EXPECT_EQ(control.coalesced_slices, 2u);

  // Interacting pair: the timer's landing time (120) precedes B's slice
  // (150), so extension must be refused and the virtual-time order must
  // match the legacy loop exactly.
  const std::string legacy = run(true, 0, nullptr);
  EXPECT_EQ(legacy, "A@100 timer@120 B@150 ");
  for (size_t workers : {size_t{1}, size_t{2}}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    EXPECT_EQ(run(true, workers, nullptr), legacy);
  }
}

// Threshold fallback observability: a single-partition workload (everything
// on one host) stays under min_parallel_partitions, so the stepper routes
// its slices through the legacy serial dispatch and says so in the stats.
TEST(CoalescingTest, SerialFallbackCountsSubThresholdSlices) {
  net::SimNetworkOptions opts;
  opts.same_host_latency = 100;
  opts.bandwidth_bytes_per_sec = 0;
  opts.latency_jitter = 0;
  opts.worker_threads = 2;  // defaults: min_parallel_partitions = 2
  net::SimNetwork net(opts);
  const net::Endpoint a{"a", 1};
  int received = 0;
  EXPECT_TRUE(net.Listen(a, [&](const net::Endpoint&, net::MessageType,
                                const std::vector<uint8_t>&) {
                  ++received;
                }).ok());
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(net.Send(a, a, net::MessageType::kWebQuery, {}).ok());
  }
  net.RunUntilIdle();
  EXPECT_EQ(received, 3);
  const net::ParallelStats& stats = net.parallel_stats();
  EXPECT_GT(stats.slices, 0u);
  EXPECT_EQ(stats.serial_slices, stats.slices);
  EXPECT_EQ(stats.serial_events, stats.events);
  EXPECT_EQ(stats.parallel_slices, 0u);
}

}  // namespace
}  // namespace webdis
