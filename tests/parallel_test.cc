// Determinism proof for the parallel stepper (DESIGN.md "Parallel
// execution"): a run under SimNetworkOptions::worker_threads = N must be
// bit-identical — results, run stats, traffic meters, and the named
// degradation sets — to the sequential stepper (N = 1) and to the legacy
// event loop (N = 0), for every seed, including schedules composed with
// fault injection and overload protection. The comparison is a full textual
// signature of everything an outcome exposes, so any divergence in any
// counter fails loudly with the two signatures side by side.
//
// This suite also runs under TSan in CI (with real worker threads), which is
// what checks the confinement rule — that concurrent partitions of a slice
// never touch shared state unsynchronized.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/clock.h"
#include "common/rng.h"
#include "common/strings.h"
#include "core/engine.h"
#include "disql/compiler.h"
#include "net/fault.h"
#include "net/sim.h"
#include "web/synth.h"

namespace webdis {
namespace {

struct Workload {
  std::string name;
  uint64_t seed = 1;
  bool faults = false;    // drop/dup/delay schedule + at-least-once retry
  bool overload = false;  // admission queue + budgets + a hot-host override
  int queries = 1;        // concurrent submissions sharing the network
  // With zero jitter, same-hop messages to different hosts arrive in one
  // wavefront, producing wide multi-partition slices (the interesting case
  // for the stepper); with jitter, arrivals scatter to distinct timestamps
  // and most slices are singletons. Both must be bit-identical.
  bool jitter = true;
};

std::string SummarizeTraffic(const core::TrafficSummary& t) {
  return StringPrintf(
      "msgs=%llu bytes=%llu inter=%llu/%llu q=%llu/%llu r=%llu/%llu "
      "f=%llu/%llu term=%llu refused=%llu",
      (unsigned long long)t.messages, (unsigned long long)t.bytes,
      (unsigned long long)t.inter_host_messages,
      (unsigned long long)t.inter_host_bytes,
      (unsigned long long)t.query_messages, (unsigned long long)t.query_bytes,
      (unsigned long long)t.report_messages,
      (unsigned long long)t.report_bytes, (unsigned long long)t.fetch_messages,
      (unsigned long long)t.fetch_bytes,
      (unsigned long long)t.terminate_messages,
      (unsigned long long)t.connection_refused);
}

/// Everything observable about an outcome except the stepper's own
/// concurrency counters (workers / parallel occupancy legitimately differ
/// between modes; nothing else may).
std::string SummarizeOutcome(const core::RunOutcome& outcome) {
  std::string out;
  out += StringPrintf(
      "completed=%d partial=%d budget_exhausted=%d rows=%zu "
      "submit=%llu done=%llu last=%llu cht=%zu/%zu/%llu/%llu fallback=%zu\n",
      outcome.completed ? 1 : 0, outcome.partial ? 1 : 0,
      outcome.budget_exhausted ? 1 : 0, outcome.TotalRows(),
      (unsigned long long)outcome.submit_time,
      (unsigned long long)outcome.completion_time,
      (unsigned long long)outcome.last_report_time,
      outcome.cht_total_entries, outcome.cht_max_active,
      (unsigned long long)outcome.cht_suppressed,
      (unsigned long long)outcome.cht_unmatched_deletes,
      outcome.fallback_node_count);
  out += "unreachable:";
  for (const std::string& host : outcome.unreachable_hosts) out += " " + host;
  out += "\nbudget_nodes:";
  for (const std::string& n : outcome.budget_exceeded_nodes) out += " " + n;
  out += "\n";
  out += core::FormatResults(outcome.results);
  // FormatRunStats appends a "parallel:" line when workers > 0; every other
  // line must match across modes.
  for (const std::string& line :
       Split(core::FormatRunStats(outcome), '\n')) {
    if (line.rfind("parallel:", 0) == 0) continue;
    out += line + "\n";
  }
  out += "traffic: " + SummarizeTraffic(outcome.traffic) + "\n";
  return out;
}

std::string QueryFor(int index) {
  // Vary start node and pattern a little per concurrent query so the batch
  // is not N copies of one schedule.
  const std::string start = web::SynthUrl(index % 3, index % 2);
  const std::string pattern =
      (index % 2 == 0) ? "(L|G)*2" : "G.(L|G)*1";
  return "select d1.url, d1.title\n"
         "from document d1 such that \"" +
         start + "\" " + pattern +
         " d1,\n"
         "where d1.title contains \"alpha\"\n";
}

/// Runs the workload with the given stepper mode and returns (signature,
/// parallel stats). The signature must not depend on `workers`.
std::string RunWorkload(const Workload& w, size_t workers,
                        net::ParallelStats* parallel_out = nullptr) {
  web::SynthWebOptions web_options;
  web_options.seed = w.seed;
  web_options.num_sites = 5;
  web_options.docs_per_site = 6;
  web_options.filler_paragraphs = 1;
  web_options.words_per_paragraph = 12;
  const web::WebGraph web = web::GenerateSynthWeb(web_options);

  core::EngineOptions options;
  options.network.worker_threads = workers;
  options.network.latency_jitter = w.jitter ? 2 * kMillisecond : 0;
  options.network.jitter_seed = w.seed * 31 + 7;
  if (w.faults) {
    options.server.retry.enabled = true;
    options.client.retry.enabled = true;
  }
  if (w.overload) {
    options.client.budget_max_hops = 6;
    options.client.budget_max_clones = 64;
    options.client.budget_max_rows_per_visit = 8;
    options.server.admission.max_pending = 4;
    options.server.admission.service_time = 2 * kMillisecond;
    // One deliberately hot host with a tiny queue exercises shedding and
    // eviction under both steppers.
    server::QueryServerOptions hot = options.server;
    hot.admission.max_pending = 1;
    options.server_overrides[web::SynthHost(1)] = hot;
  }
  core::Engine engine(&web, options);

  net::FaultPlan plan(w.seed * 97 + 13);
  if (w.faults) {
    Rng rng(w.seed * 7919);
    for (net::MessageType type :
         {net::MessageType::kWebQuery, net::MessageType::kReport,
          net::MessageType::kDeliveryAck}) {
      net::FaultPlan::Rule rule;
      rule.type = type;
      rule.drop_prob = 0.02 + 0.10 * rng.NextDouble();
      rule.duplicate_prob = 0.08 * rng.NextDouble();
      plan.AddRule(rule);
    }
    net::FaultPlan::Rule delay_rule;
    delay_rule.type = net::MessageType::kReport;
    delay_rule.delay_prob = 0.25;
    delay_rule.delay = rng.UniformRange(1, 8) * kMillisecond;
    plan.AddRule(delay_rule);
    engine.network().SetFaultPlan(&plan);
  }

  const core::TrafficSummary before = engine.TrafficSnapshot();
  std::vector<query::QueryId> ids;
  for (int i = 0; i < w.queries; ++i) {
    auto compiled = disql::CompileDisql(QueryFor(i));
    EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
    if (!compiled.ok()) return "compile error";
    auto id = engine.Submit(compiled.value(), "user" + std::to_string(i));
    EXPECT_TRUE(id.ok()) << id.status().ToString();
    if (!id.ok()) return "submit error";
    ids.push_back(id.value());
  }
  engine.network().RunUntilIdle();

  std::string signature;
  for (const query::QueryId& id : ids) {
    signature += SummarizeOutcome(engine.CollectOutcome(id, before));
    signature += "----\n";
  }
  if (parallel_out != nullptr) {
    *parallel_out = engine.network().parallel_stats();
  }
  return signature;
}

void ExpectBitIdentical(const Workload& w) {
  SCOPED_TRACE(w.name + " seed=" + std::to_string(w.seed));
  const std::string legacy = RunWorkload(w, 0);
  for (size_t workers : {size_t{1}, size_t{2}, size_t{4}}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    EXPECT_EQ(legacy, RunWorkload(w, workers));
  }
}

TEST(ParallelDeterminismTest, PlainWorkloadAcrossSeeds) {
  for (uint64_t seed = 1; seed <= 16; ++seed) {
    ExpectBitIdentical({.name = "plain", .seed = seed});
  }
}

TEST(ParallelDeterminismTest, WavefrontWorkloadAcrossSeeds) {
  for (uint64_t seed = 1; seed <= 16; ++seed) {
    ExpectBitIdentical(
        {.name = "wavefront", .seed = seed, .queries = 4, .jitter = false});
  }
}

TEST(ParallelDeterminismTest, MultiQueryAcrossSeeds) {
  for (uint64_t seed = 1; seed <= 16; ++seed) {
    ExpectBitIdentical({.name = "multiquery", .seed = seed, .queries = 4});
  }
}

TEST(ParallelDeterminismTest, ComposedWithFaultSchedules) {
  for (uint64_t seed = 1; seed <= 16; ++seed) {
    ExpectBitIdentical(
        {.name = "faults", .seed = seed, .faults = true, .queries = 2});
    ExpectBitIdentical({.name = "faults-wavefront",
                        .seed = seed,
                        .faults = true,
                        .queries = 2,
                        .jitter = false});
  }
}

TEST(ParallelDeterminismTest, ComposedWithOverloadSchedules) {
  for (uint64_t seed = 1; seed <= 16; ++seed) {
    ExpectBitIdentical({.name = "overload",
                        .seed = seed,
                        .overload = true,
                        .queries = 3,
                        .jitter = false});
  }
}

TEST(ParallelDeterminismTest, ComposedWithFaultsAndOverload) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    ExpectBitIdentical({.name = "both",
                        .seed = seed,
                        .faults = true,
                        .overload = true,
                        .queries = 2});
  }
}

// The determinism theorems above would be vacuous if the stepper never
// actually ran anything in parallel: prove the workloads exercise
// multi-partition slices.
TEST(ParallelDeterminismTest, ParallelSlicesActuallyHappen) {
  net::ParallelStats stats;
  (void)RunWorkload(
      {.name = "occupancy", .seed = 3, .queries = 4, .jitter = false}, 4,
      &stats);
  EXPECT_GT(stats.slices, 0u);
  EXPECT_GT(stats.parallel_slices, 0u);
  EXPECT_GT(stats.Occupancy(), 0.05);
  EXPECT_GE(stats.max_slice_partitions, 2u);
}

// Legacy mode must not pay for the stepper: no pool, zero parallel stats.
TEST(ParallelDeterminismTest, LegacyModeReportsNoParallelism) {
  net::ParallelStats stats;
  (void)RunWorkload({.name = "legacy", .seed = 3}, 0, &stats);
  EXPECT_EQ(stats.slices, 0u);
  EXPECT_EQ(stats.events, 0u);
}

}  // namespace
}  // namespace webdis
