#include "core/engine.h"

#include <gtest/gtest.h>

#include "core/trace.h"

#include <map>
#include <set>

#include "web/synth.h"
#include "web/topologies.h"
#include "web/university.h"

namespace webdis::core {
namespace {

/// Finds the result set projecting exactly `labels`; nullptr if absent.
const relational::ResultSet* FindSet(
    const std::vector<relational::ResultSet>& results,
    const std::vector<std::string>& labels) {
  for (const relational::ResultSet& rs : results) {
    if (rs.column_labels == labels) return &rs;
  }
  return nullptr;
}

/// Values of one column as a set of strings.
std::set<std::string> Column(const relational::ResultSet& rs, size_t col) {
  std::set<std::string> out;
  for (const relational::Tuple& row : rs.rows) {
    out.insert(row[col].ToString());
  }
  return out;
}

// ---------------------------------------------------------------------------
// Campus scenario: the paper's Section 5 sample execution (Figures 7 and 8).
// ---------------------------------------------------------------------------

TEST(EngineCampusTest, ReproducesFigure8Results) {
  web::CampusScenario scenario = web::BuildCampusScenario();
  Engine engine(&scenario.web);
  auto outcome = engine.Run(scenario.disql, "maya");
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_TRUE(outcome->completed);

  // q1's section: the Labs page URL.
  const relational::ResultSet* q1 = FindSet(outcome->results, {"d0.url"});
  ASSERT_NE(q1, nullptr);
  EXPECT_EQ(Column(*q1, 0),
            std::set<std::string>{"http://www.csa.iisc.ernet.in/Labs"});

  // q2's section: the three convener rows of Figure 8.
  const relational::ResultSet* q2 =
      FindSet(outcome->results, {"d1.url", "r.text"});
  ASSERT_NE(q2, nullptr);
  std::map<std::string, std::string> by_url;
  for (const relational::Tuple& row : q2->rows) {
    by_url[row[0].ToString()] = row[1].ToString();
  }
  ASSERT_EQ(by_url.size(), scenario.expected_conveners.size());
  for (const auto& [url, name] : scenario.expected_conveners) {
    ASSERT_TRUE(by_url.contains(url)) << url;
    EXPECT_NE(by_url[url].find(name), std::string::npos)
        << "row for " << url << " was: " << by_url[url];
  }
}

TEST(EngineCampusTest, CompletionDetectedViaCht) {
  web::CampusScenario scenario = web::BuildCampusScenario();
  Engine engine(&scenario.web);
  auto outcome = engine.Run(scenario.disql);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->completed);
  // CHT completion fires the moment the last report lands — not later.
  EXPECT_EQ(outcome->completion_time, outcome->last_report_time);
  EXPECT_GT(outcome->cht_total_entries, 0u);
  EXPECT_EQ(outcome->cht_unmatched_deletes, 0u);
}

TEST(EngineCampusTest, NoDocumentDownloadsInQueryShipping) {
  web::CampusScenario scenario = web::BuildCampusScenario();
  Engine engine(&scenario.web);
  auto outcome = engine.Run(scenario.disql);
  ASSERT_TRUE(outcome.ok());
  // §3.2(1): no web resource is ever downloaded.
  EXPECT_EQ(outcome->traffic.fetch_messages, 0u);
  EXPECT_EQ(outcome->traffic.fetch_bytes, 0u);
}

// ---------------------------------------------------------------------------
// Figure 1: traversal roles.
// ---------------------------------------------------------------------------

TEST(EngineFig1Test, RolesMatchFigure1) {
  web::Scenario scenario = web::BuildFig1Scenario();
  Engine engine(&scenario.web);
  std::map<std::string, std::vector<server::VisitEvent>> visits;
  engine.ObserveVisits([&visits](const server::VisitEvent& event) {
    visits[event.node_url].push_back(event);
  });
  auto outcome = engine.Run(scenario.disql);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_TRUE(outcome->completed);

  // Nodes 1-3 only route (never evaluate).
  for (const std::string& url : scenario.pure_router_urls) {
    ASSERT_TRUE(visits.contains(url)) << url;
    for (const server::VisitEvent& v : visits[url]) {
      EXPECT_FALSE(v.evaluated) << url;
      EXPECT_GT(v.forward_count, 0u) << url;
    }
  }
  // Nodes 4-8 evaluate node-queries.
  for (const std::string& url : scenario.server_router_urls) {
    ASSERT_TRUE(visits.contains(url)) << url;
    bool any_eval = false;
    for (const server::VisitEvent& v : visits[url]) {
      any_eval = any_eval || v.evaluated;
    }
    EXPECT_TRUE(any_eval) << url;
  }
  // Node 4 acts as ServerRouter twice: once for q1, once for q2.
  const std::string node4 = "http://site4.example/node4";
  ASSERT_EQ(visits[node4].size(), 2u);
  EXPECT_EQ(visits[node4][0].received_state.num_q, 2u);
  EXPECT_EQ(visits[node4][1].received_state.num_q, 1u);
  // Node 7 is a dead-end.
  for (const std::string& url : scenario.dead_end_urls) {
    ASSERT_TRUE(visits.contains(url));
    bool dead = false;
    for (const server::VisitEvent& v : visits[url]) dead = dead || v.dead_end;
    EXPECT_TRUE(dead) << url;
  }
}

// ---------------------------------------------------------------------------
// Figure 5: duplicate suppression.
// ---------------------------------------------------------------------------

TEST(EngineFig5Test, LogTableSuppressesEquivalentVisits) {
  web::Scenario scenario = web::BuildFig5Scenario();
  const std::string node4 = "http://site4.example/node4";

  // With dedup: node 4 sees 5 arrivals (a-e) but only 3 distinct states are
  // processed; the two extra (1, N) arrivals are dropped.
  Engine with_dedup(&scenario.web);
  std::vector<server::VisitEvent> visits;
  with_dedup.ObserveVisits([&](const server::VisitEvent& e) {
    if (e.node_url == node4) visits.push_back(e);
  });
  auto outcome = with_dedup.Run(scenario.disql);
  ASSERT_TRUE(outcome.ok());
  ASSERT_EQ(visits.size(), 5u) << "node 4 must be visited five times (a-e)";
  int duplicates = 0;
  for (const server::VisitEvent& v : visits) duplicates += v.duplicate;
  EXPECT_EQ(duplicates, 2) << "visits d and e are equivalent to c";

  // Without dedup: all 5 arrivals are processed.
  EngineOptions no_dedup;
  no_dedup.server.dedup_enabled = false;
  Engine without(&scenario.web, no_dedup);
  std::vector<server::VisitEvent> visits2;
  without.ObserveVisits([&](const server::VisitEvent& e) {
    if (e.node_url == node4) visits2.push_back(e);
  });
  auto outcome2 = without.Run(scenario.disql);
  ASSERT_TRUE(outcome2.ok());
  int processed = 0;
  for (const server::VisitEvent& v : visits2) processed += !v.duplicate;
  EXPECT_EQ(processed, 5);

  // Same unique results either way — dedup affects cost, never answers.
  ASSERT_EQ(outcome->results.size(), outcome2->results.size());
  EXPECT_EQ(outcome->TotalRows(), outcome2->TotalRows());
  // Without dedup the user received duplicate rows that had to be filtered.
  EXPECT_GT(outcome2->client_stats.duplicate_rows_filtered, 0u);
}

// ---------------------------------------------------------------------------
// Query shipping and data shipping return the same answers.
// ---------------------------------------------------------------------------

TEST(EngineEquivalenceTest, MatchesDataShippingOnSyntheticWebs) {
  for (uint64_t seed : {7u, 21u, 99u}) {
    web::SynthWebOptions web_options;
    web_options.seed = seed;
    web_options.num_sites = 5;
    web_options.docs_per_site = 8;
    web::WebGraph web = web::GenerateSynthWeb(web_options);

    const std::string disql =
        "select d1.url, d2.url\n"
        "from document d1 such that \"" +
        web::SynthUrl(0, 0) +
        "\" (L|G)*2 d1,\n"
        "where d1.title contains \"alpha\"\n"
        "     document d2 such that d1 G.(L*1) d2,\n"
        "where d2.text contains \"beta\"\n";
    auto compiled = disql::CompileDisql(disql);
    ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();

    Engine engine(&web);
    auto shipped = engine.RunCompiled(compiled.value());
    ASSERT_TRUE(shipped.ok()) << shipped.status().ToString();
    EXPECT_TRUE(shipped->completed);

    auto baseline = RunDataShippingBaseline(web, compiled.value());
    ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

    // Same unique rows per section.
    ASSERT_EQ(shipped->results.size(), baseline->outcome.results.size())
        << "seed " << seed;
    for (const relational::ResultSet& rs : shipped->results) {
      const relational::ResultSet* other =
          FindSet(baseline->outcome.results, rs.column_labels);
      ASSERT_NE(other, nullptr);
      for (size_t c = 0; c < rs.column_labels.size(); ++c) {
        EXPECT_EQ(Column(rs, c), Column(*other, c)) << "seed " << seed;
      }
      EXPECT_EQ(rs.rows.size(), other->rows.size()) << "seed " << seed;
    }
    // And the headline claim: query shipping moves far fewer bytes.
    EXPECT_LT(shipped->traffic.bytes, baseline->traffic.bytes)
        << "seed " << seed;
  }
}

// ---------------------------------------------------------------------------
// FormatResults: the Figure-8-style display.
// ---------------------------------------------------------------------------

TEST(FormatResultsTest, AlignsAndTruncates) {
  relational::ResultSet rs;
  rs.column_labels = {"d.url", "r.text"};
  rs.rows.push_back({relational::Value(std::string("http://a/x")),
                     relational::Value(std::string("short"))});
  rs.rows.push_back(
      {relational::Value(std::string("http://a/longer-url")),
       relational::Value(std::string(200, 'x'))});  // truncated with "..."
  const std::string out = FormatResults({rs});
  EXPECT_NE(out.find("d.url"), std::string::npos);
  EXPECT_NE(out.find("http://a/x"), std::string::npos);
  EXPECT_NE(out.find("..."), std::string::npos);
  // Header rule present.
  EXPECT_NE(out.find("-----"), std::string::npos);
}

TEST(FormatResultsTest, EmptyInputsRenderQuietly) {
  EXPECT_EQ(FormatResults({}), "");
  relational::ResultSet empty;
  empty.column_labels = {"only.header"};
  const std::string out = FormatResults({empty});
  EXPECT_NE(out.find("only.header"), std::string::npos);
}

// ---------------------------------------------------------------------------
// TraceCollector: the Figure-7-style traversal trace as a public API.
// ---------------------------------------------------------------------------

TEST(TraceCollectorTest, RendersEveryVisitWithRolesAndOutcomes) {
  web::CampusScenario scenario = web::BuildCampusScenario();
  Engine engine(&scenario.web);
  TraceCollector trace(&engine);
  auto outcome = engine.Run(scenario.disql);
  ASSERT_TRUE(outcome.ok());
  EXPECT_FALSE(trace.events().empty());
  const std::string rendered = trace.Format();
  // Every visited node appears.
  for (const server::VisitEvent& event : trace.events()) {
    EXPECT_NE(rendered.find(event.node_url), std::string::npos);
  }
  // The CSA homepage is a PureRouter; the Labs page answers and forwards.
  EXPECT_NE(rendered.find("PureRouter"), std::string::npos);
  EXPECT_NE(rendered.find("answered + forwarded"), std::string::npos);
  EXPECT_NE(rendered.find("dead-end"), std::string::npos);
  trace.Clear();
  EXPECT_TRUE(trace.events().empty());
}

TEST(TraceCollectorTest, DescribeVisitCoversAllOutcomes) {
  server::VisitEvent e;
  e.duplicate = true;
  EXPECT_EQ(TraceCollector::DescribeVisit(e), "duplicate dropped");
  e = server::VisitEvent{};
  EXPECT_EQ(TraceCollector::DescribeVisit(e), "forwarded");
  e.evaluated = true;
  e.dead_end = true;
  EXPECT_EQ(TraceCollector::DescribeVisit(e), "dead-end");
  e = server::VisitEvent{};
  e.evaluated = true;
  e.answered = true;
  e.forward_count = 2;
  EXPECT_EQ(TraceCollector::DescribeVisit(e), "answered + forwarded");
  e = server::VisitEvent{};
  e.rewritten = true;
  EXPECT_EQ(TraceCollector::DescribeVisit(e), "superset rewrite; forwarded");
}

// ---------------------------------------------------------------------------
// The university-scale workload: every planted convener is found; floating
// links surface as missing documents, never as crashes.
// ---------------------------------------------------------------------------

TEST(EngineUniversityTest, FindsEveryPlantedConvener) {
  web::UniversityOptions options;
  options.seed = 5;
  options.departments = 3;
  options.labs_per_department = 3;
  const web::UniversityWeb uni = web::GenerateUniversityWeb(options);
  Engine engine(&uni.web);
  auto outcome = engine.Run(uni.convener_disql);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_TRUE(outcome->completed);

  const relational::ResultSet* conveners =
      FindSet(outcome->results, {"d1.url", "r.text"});
  ASSERT_NE(conveners, nullptr);
  std::map<std::string, std::string> found;
  for (const relational::Tuple& row : conveners->rows) {
    found[row[0].ToString()] = row[1].ToString();
  }
  ASSERT_EQ(found.size(), uni.conveners.size());
  for (const auto& [url, name] : uni.conveners) {
    ASSERT_TRUE(found.contains(url)) << url;
    EXPECT_NE(found[url].find(name), std::string::npos) << url;
  }
  // One Labs page per department answered q1.
  const relational::ResultSet* labs = FindSet(outcome->results, {"d0.url"});
  ASSERT_NE(labs, nullptr);
  EXPECT_EQ(labs->rows.size(), 3u);
}

TEST(EngineUniversityTest, FloatingLinksAreMissingDocumentsNotFailures) {
  web::UniversityOptions options;
  options.seed = 9;
  options.departments = 4;
  options.floating_link_prob = 1.0;  // every filler page has one
  const web::UniversityWeb uni = web::GenerateUniversityWeb(options);
  ASSERT_FALSE(uni.floating_links.empty());
  Engine engine(&uni.web);
  // Walk the whole university including the rotten pages.
  const std::string disql =
      "select d.url from document d such that \"" + uni.root_url +
      "\" (G|L)*3 d";
  auto outcome = engine.Run(disql);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->completed);
  EXPECT_GE(outcome->server_stats.missing_documents,
            uni.floating_links.size());
}

}  // namespace
}  // namespace webdis::core
