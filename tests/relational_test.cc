#include <gtest/gtest.h>

#include "common/rng.h"
#include "relational/eval.h"
#include "relational/expr.h"
#include "relational/table.h"
#include "relational/value.h"
#include "serialize/encoder.h"

namespace webdis::relational {
namespace {

// -- Value ----------------------------------------------------------------------

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_EQ(Value(static_cast<int64_t>(7)).AsInt(), 7);
  EXPECT_EQ(Value(std::string("x")).AsString(), "x");
  EXPECT_EQ(Value().type(), ValueType::kNull);
  EXPECT_EQ(Value(static_cast<int64_t>(0)).type(), ValueType::kInt);
  EXPECT_EQ(Value(std::string()).type(), ValueType::kString);
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value().ToString(), "NULL");
  EXPECT_EQ(Value(static_cast<int64_t>(-5)).ToString(), "-5");
  EXPECT_EQ(Value(std::string("abc")).ToString(), "abc");
}

TEST(ValueTest, SqlEqualsNullNeverEqual) {
  EXPECT_FALSE(Value().SqlEquals(Value()));
  EXPECT_FALSE(Value().SqlEquals(Value(static_cast<int64_t>(1))));
  EXPECT_TRUE(Value(static_cast<int64_t>(1))
                  .SqlEquals(Value(static_cast<int64_t>(1))));
  EXPECT_FALSE(Value(static_cast<int64_t>(1)).SqlEquals(Value(std::string("1"))));
}

TEST(ValueTest, CompareOrdersWithinAndAcrossTypes) {
  EXPECT_LT(Value(static_cast<int64_t>(1)).Compare(Value(static_cast<int64_t>(2))), 0);
  EXPECT_GT(Value(std::string("b")).Compare(Value(std::string("a"))), 0);
  EXPECT_EQ(Value(std::string("a")).Compare(Value(std::string("a"))), 0);
  // Null sorts first, ints before strings (type-id order).
  EXPECT_LT(Value().Compare(Value(static_cast<int64_t>(0))), 0);
  EXPECT_LT(Value(static_cast<int64_t>(99)).Compare(Value(std::string(""))), 0);
}

TEST(ValueTest, SerializationRoundTrip) {
  for (const Value& v : {Value(), Value(static_cast<int64_t>(-42)),
                         Value(std::string("hello \x01 world"))}) {
    serialize::Encoder enc;
    v.EncodeTo(&enc);
    serialize::Decoder dec(enc.data());
    Value out;
    ASSERT_TRUE(Value::DecodeFrom(&dec, &out).ok());
    EXPECT_TRUE(v == out);
  }
}

// -- Table ----------------------------------------------------------------------

TEST(TableTest, InsertValidatesArity) {
  Table t(DocumentSchema());
  EXPECT_EQ(t.Insert({Value(std::string("u"))}).code(),
            StatusCode::kInvalidArgument);
}

TEST(TableTest, InsertValidatesTypes) {
  Table t(DocumentSchema());
  // length column must be int.
  EXPECT_EQ(t.Insert({Value(std::string("u")), Value(std::string("t")),
                      Value(std::string("x")), Value(std::string("not int"))})
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(t.Insert({Value(std::string("u")), Value(std::string("t")),
                        Value(std::string("x")),
                        Value(static_cast<int64_t>(3))})
                  .ok());
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(TableTest, NullAllowedForAnyColumn) {
  Table t(DocumentSchema());
  EXPECT_TRUE(
      t.Insert({Value(), Value(), Value(), Value()}).ok());
}

TEST(SchemaTest, IndexOf) {
  EXPECT_EQ(DocumentSchema().IndexOf("url"), 0);
  EXPECT_EQ(DocumentSchema().IndexOf("length"), 3);
  EXPECT_EQ(DocumentSchema().IndexOf("nope"), -1);
}

TEST(DatabaseTest, PutFindNames) {
  Database db;
  db.Put("document", Table(DocumentSchema()));
  db.Put("anchor", Table(AnchorSchema()));
  EXPECT_NE(db.Find("document"), nullptr);
  EXPECT_EQ(db.Find("missing"), nullptr);
  EXPECT_EQ(db.RelationNames(),
            (std::vector<std::string>{"anchor", "document"}));
}

// -- Expr ----------------------------------------------------------------------

Tuple DocRow(const std::string& url, const std::string& title,
             const std::string& text, int64_t length) {
  return {Value(url), Value(title), Value(text), Value(length)};
}

TEST(ExprTest, ColumnRefLookup) {
  const Tuple row = DocRow("u", "t", "x", 5);
  RowBinding binding;
  binding.Bind("d", &DocumentSchema(), &row);
  auto v = Expr::ColumnRef("d", "title")->Eval(binding);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsString(), "t");
}

TEST(ExprTest, UnboundAliasAndBadColumnError) {
  const Tuple row = DocRow("u", "t", "x", 5);
  RowBinding binding;
  binding.Bind("d", &DocumentSchema(), &row);
  EXPECT_FALSE(Expr::ColumnRef("z", "title")->Eval(binding).ok());
  EXPECT_FALSE(Expr::ColumnRef("d", "bogus")->Eval(binding).ok());
}

TEST(ExprTest, ComparisonsOnInts) {
  RowBinding binding;
  const auto lit = [](int64_t v) { return Expr::Literal(Value(v)); };
  const auto eval = [&](CompareOp op, int64_t a, int64_t b) {
    return Expr::Compare(op, lit(a), lit(b))->EvalPredicate(binding).value();
  };
  EXPECT_TRUE(eval(CompareOp::kEq, 3, 3));
  EXPECT_FALSE(eval(CompareOp::kEq, 3, 4));
  EXPECT_TRUE(eval(CompareOp::kNe, 3, 4));
  EXPECT_TRUE(eval(CompareOp::kLt, 3, 4));
  EXPECT_TRUE(eval(CompareOp::kLe, 3, 3));
  EXPECT_TRUE(eval(CompareOp::kGt, 4, 3));
  EXPECT_TRUE(eval(CompareOp::kGe, 4, 4));
}

TEST(ExprTest, ContainsIsCaseInsensitive) {
  RowBinding binding;
  auto expr = Expr::Contains(
      Expr::Literal(Value(std::string("The CONVENER of the lab"))),
      Expr::Literal(Value(std::string("convener"))));
  EXPECT_TRUE(expr->EvalPredicate(binding).value());
}

TEST(ExprTest, ContainsOnNonStringIsFalse) {
  RowBinding binding;
  auto expr = Expr::Contains(Expr::Literal(Value(static_cast<int64_t>(5))),
                             Expr::Literal(Value(std::string("5"))));
  EXPECT_FALSE(expr->EvalPredicate(binding).value());
}

TEST(ExprTest, LogicalOperatorsShortCircuit) {
  RowBinding binding;
  const auto t = [] { return Expr::Literal(Value(static_cast<int64_t>(1))); };
  const auto f = [] { return Expr::Literal(Value(static_cast<int64_t>(0))); };
  // Right side references an unbound alias: with short-circuit it is never
  // evaluated.
  auto and_expr = Expr::And(f(), Expr::ColumnRef("zz", "url"));
  EXPECT_FALSE(and_expr->EvalPredicate(binding).value());
  auto or_expr = Expr::Or(t(), Expr::ColumnRef("zz", "url"));
  EXPECT_TRUE(or_expr->EvalPredicate(binding).value());
  auto not_expr = Expr::Not(f());
  EXPECT_TRUE(not_expr->EvalPredicate(binding).value());
}

TEST(ExprTest, NullIsFalsy) {
  RowBinding binding;
  EXPECT_FALSE(Expr::Literal(Value())->EvalPredicate(binding).value());
  EXPECT_TRUE(
      Expr::Not(Expr::Literal(Value()))->EvalPredicate(binding).value());
}

TEST(ExprTest, CloneIsDeepAndEquivalent) {
  auto original = Expr::And(
      Expr::Contains(Expr::ColumnRef("d", "title"),
                     Expr::Literal(Value(std::string("lab")))),
      Expr::Compare(CompareOp::kGt, Expr::ColumnRef("d", "length"),
                    Expr::Literal(Value(static_cast<int64_t>(10)))));
  auto copy = original->Clone();
  EXPECT_EQ(original->ToString(), copy->ToString());
}

TEST(ExprTest, ToStringRendersDisqlish) {
  auto expr = Expr::Or(
      Expr::Compare(CompareOp::kEq, Expr::ColumnRef("a", "ltype"),
                    Expr::Literal(Value(std::string("G")))),
      Expr::Not(Expr::Contains(Expr::ColumnRef("d", "text"),
                               Expr::Literal(Value(std::string("x"))))));
  EXPECT_EQ(expr->ToString(),
            "((a.ltype = \"G\") or (not (d.text contains \"x\")))");
}

TEST(ExprTest, CollectAliases) {
  auto expr = Expr::And(
      Expr::Compare(CompareOp::kEq, Expr::ColumnRef("a", "x"),
                    Expr::ColumnRef("b", "y")),
      Expr::Contains(Expr::ColumnRef("a", "z"),
                     Expr::Literal(Value(std::string("k")))));
  std::vector<std::string> aliases;
  expr->CollectAliases(&aliases);
  EXPECT_EQ(aliases, (std::vector<std::string>{"a", "b"}));
}

TEST(ExprTest, SerializationRoundTrip) {
  auto original = Expr::And(
      Expr::Contains(Expr::ColumnRef("d", "title"),
                     Expr::Literal(Value(std::string("lab")))),
      Expr::Or(Expr::Compare(CompareOp::kLe, Expr::ColumnRef("d", "length"),
                             Expr::Literal(Value(static_cast<int64_t>(9)))),
               Expr::Not(Expr::Literal(Value()))));
  serialize::Encoder enc;
  original->EncodeTo(&enc);
  serialize::Decoder dec(enc.data());
  auto decoded = Expr::DecodeFrom(&dec);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ((*decoded)->ToString(), original->ToString());
  EXPECT_TRUE(dec.AtEnd());
}

TEST(ExprTest, DecodeRejectsGarbage) {
  const std::vector<uint8_t> garbage{200, 1, 2, 3};
  serialize::Decoder dec(garbage);
  EXPECT_FALSE(Expr::DecodeFrom(&dec).ok());
}

// -- Execute -----------------------------------------------------------------------

Database LabDatabase() {
  Database db;
  Table doc(DocumentSchema());
  EXPECT_TRUE(doc.Insert(DocRow("http://h/p", "Lab page", "welcome", 100))
                  .ok());
  db.Put("document", std::move(doc));
  Table anchor(AnchorSchema());
  EXPECT_TRUE(anchor
                  .Insert({Value(std::string("a1")), Value(std::string("http://h/p")),
                           Value(std::string("http://h/q")), Value(std::string("L"))})
                  .ok());
  EXPECT_TRUE(anchor
                  .Insert({Value(std::string("a2")), Value(std::string("http://h/p")),
                           Value(std::string("http://g/r")), Value(std::string("G"))})
                  .ok());
  db.Put("anchor", std::move(anchor));
  Table rel(RelInfonSchema());
  EXPECT_TRUE(rel.Insert({Value(std::string("hr")), Value(std::string("http://h/p")),
                          Value(std::string("CONVENER X")),
                          Value(static_cast<int64_t>(10))})
                  .ok());
  db.Put("relinfon", std::move(rel));
  return db;
}

TEST(ExecuteTest, SimpleSelectWithFilter) {
  Database db = LabDatabase();
  SelectQuery q;
  q.from = {{"document", "d"}, {"anchor", "a"}};
  q.where = Expr::Compare(CompareOp::kEq, Expr::ColumnRef("a", "ltype"),
                          Expr::Literal(Value(std::string("G"))));
  q.select = {{"a", "base"}, {"a", "href"}};
  auto rs = Execute(q, db);
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_EQ(rs->rows.size(), 1u);
  EXPECT_EQ(rs->rows[0][1].AsString(), "http://g/r");
  EXPECT_EQ(rs->column_labels, (std::vector<std::string>{"a.base", "a.href"}));
}

TEST(ExecuteTest, CrossProductCardinality) {
  Database db = LabDatabase();
  SelectQuery q;
  q.from = {{"document", "d"}, {"anchor", "a"}};
  q.select = {{"d", "url"}, {"a", "href"}};
  q.distinct = false;
  auto rs = Execute(q, db);
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->rows.size(), 2u);  // 1 document x 2 anchors
}

TEST(ExecuteTest, DistinctDropsDuplicateProjections) {
  Database db = LabDatabase();
  SelectQuery q;
  q.from = {{"document", "d"}, {"anchor", "a"}};
  q.select = {{"d", "url"}};  // same value for both anchor rows
  q.distinct = true;
  auto rs = Execute(q, db);
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->rows.size(), 1u);
}

TEST(ExecuteTest, EmptyResultWhenNothingMatches) {
  Database db = LabDatabase();
  SelectQuery q;
  q.from = {{"relinfon", "r"}};
  q.where = Expr::Contains(Expr::ColumnRef("r", "text"),
                           Expr::Literal(Value(std::string("absent"))));
  q.select = {{"r", "text"}};
  auto rs = Execute(q, db);
  ASSERT_TRUE(rs.ok());
  EXPECT_TRUE(rs->rows.empty());
}

TEST(ExecuteTest, ErrorsOnUnknownRelationAndDuplicateAlias) {
  Database db = LabDatabase();
  SelectQuery q1;
  q1.from = {{"nope", "n"}};
  q1.select = {{"n", "x"}};
  EXPECT_EQ(Execute(q1, db).status().code(), StatusCode::kNotFound);

  SelectQuery q2;
  q2.from = {{"document", "d"}, {"anchor", "d"}};
  q2.select = {{"d", "url"}};
  EXPECT_EQ(Execute(q2, db).status().code(), StatusCode::kInvalidArgument);

  SelectQuery q3;
  EXPECT_EQ(Execute(q3, db).status().code(), StatusCode::kInvalidArgument);
}

TEST(ExecuteTest, PushdownMatchesNaiveOnRandomQueries) {
  // Property: pushdown never changes results — random single-alias and
  // cross-alias conjunct mixes over a database with multi-row tables.
  Rng rng(123);
  Database db = LabDatabase();
  const std::vector<std::pair<std::string, std::string>> columns = {
      {"d", "url"},   {"d", "title"}, {"a", "href"},
      {"a", "ltype"}, {"r", "text"},  {"r", "delimiter"}};
  const std::vector<std::string> needles = {"http", "lab", "G", "L",
                                            "convener", "zzz", ""};
  for (int round = 0; round < 60; ++round) {
    SelectQuery q;
    q.from = {{"document", "d"}, {"anchor", "a"}, {"relinfon", "r"}};
    q.select = {{"d", "url"}, {"a", "href"}, {"r", "delimiter"}};
    q.distinct = false;
    // 1-3 random contains-conjuncts.
    ExprPtr where;
    const int terms = 1 + static_cast<int>(rng.Uniform(3));
    for (int t = 0; t < terms; ++t) {
      const auto& col = columns[rng.Uniform(columns.size())];
      auto term = Expr::Contains(
          Expr::ColumnRef(col.first, col.second),
          Expr::Literal(Value(needles[rng.Uniform(needles.size())])));
      where = where == nullptr ? std::move(term)
                               : Expr::And(std::move(where), std::move(term));
    }
    q.where = std::move(where);
    q.pushdown = true;
    auto with = Execute(q, db);
    q.where = q.where->Clone();
    q.pushdown = false;
    auto without = Execute(q, db);
    ASSERT_TRUE(with.ok());
    ASSERT_TRUE(without.ok());
    ASSERT_EQ(with->rows.size(), without->rows.size()) << round;
    for (size_t i = 0; i < with->rows.size(); ++i) {
      for (size_t c = 0; c < with->rows[i].size(); ++c) {
        EXPECT_TRUE(with->rows[i][c] == without->rows[i][c]) << round;
      }
    }
  }
}

TEST(ExecuteTest, PushdownHandlesOrAsResidual) {
  // An OR spanning two aliases cannot be pushed; it must stay residual and
  // still filter correctly.
  Database db = LabDatabase();
  SelectQuery q;
  q.from = {{"document", "d"}, {"anchor", "a"}};
  q.where = Expr::Or(
      Expr::Compare(CompareOp::kEq, Expr::ColumnRef("a", "ltype"),
                    Expr::Literal(Value(std::string("G")))),
      Expr::Contains(Expr::ColumnRef("d", "title"),
                     Expr::Literal(Value(std::string("nonexistent")))));
  q.select = {{"a", "href"}};
  auto rs = Execute(q, db);
  ASSERT_TRUE(rs.ok());
  ASSERT_EQ(rs->rows.size(), 1u);
  EXPECT_EQ(rs->rows[0][0].AsString(), "http://g/r");
}

TEST(ExecuteTest, ConstantFalseConjunctEmptiesResult) {
  Database db = LabDatabase();
  SelectQuery q;
  q.from = {{"document", "d"}, {"anchor", "a"}};
  q.where = Expr::And(
      Expr::Literal(Value(static_cast<int64_t>(0))),
      Expr::Compare(CompareOp::kEq, Expr::ColumnRef("a", "ltype"),
                    Expr::Literal(Value(std::string("G")))));
  q.select = {{"a", "href"}};
  auto rs = Execute(q, db);
  ASSERT_TRUE(rs.ok());
  EXPECT_TRUE(rs->rows.empty());
}

TEST(ExecuteTest, PaperConvenerNodeQuery) {
  // The q2 of Example Query 2: relinfon delimited by hr containing
  // "convener".
  Database db = LabDatabase();
  SelectQuery q;
  q.from = {{"document", "d1"}, {"relinfon", "r"}};
  q.where = Expr::And(
      Expr::Compare(CompareOp::kEq, Expr::ColumnRef("r", "delimiter"),
                    Expr::Literal(Value(std::string("hr")))),
      Expr::Contains(Expr::ColumnRef("r", "text"),
                     Expr::Literal(Value(std::string("convener")))));
  q.select = {{"d1", "url"}, {"r", "text"}};
  auto rs = Execute(q, db);
  ASSERT_TRUE(rs.ok());
  ASSERT_EQ(rs->rows.size(), 1u);
  EXPECT_EQ(rs->rows[0][1].AsString(), "CONVENER X");
}

}  // namespace
}  // namespace webdis::relational
