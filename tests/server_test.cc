#include <gtest/gtest.h>

#include <set>

#include "core/engine.h"
#include "disql/compiler.h"
#include "net/sim.h"
#include "query/report.h"
#include "serialize/encoder.h"
#include "server/db_constructor.h"
#include "server/http_server.h"
#include "server/log_table.h"
#include "server/persist.h"
#include "server/query_server.h"
#include "web/pagegen.h"

namespace webdis::server {
namespace {

using query::CloneState;

pre::Pre P(const std::string& s) { return pre::Pre::Parse(s).value(); }

// -- DatabaseConstructor ----------------------------------------------------------

TEST(DbConstructorTest, BuildsAllThreeVirtualRelations) {
  const html::Url url = html::ParseUrl("http://h/p").value();
  const html::ParsedDocument doc = html::ParseDocument(
      url,
      "<title>T</title><p>body text</p>"
      "<a href=\"/q\">local</a><a href=\"http://g/\">global</a>"
      "block<hr>");
  const relational::Database db = BuildNodeDatabase(doc);

  const relational::Table* document = db.Find("document");
  ASSERT_NE(document, nullptr);
  ASSERT_EQ(document->num_rows(), 1u);
  EXPECT_EQ(document->row(0)[0].AsString(), "http://h/p");
  EXPECT_EQ(document->row(0)[1].AsString(), "T");
  EXPECT_EQ(document->row(0)[3].AsInt(),
            static_cast<int64_t>(doc.length));

  const relational::Table* anchor = db.Find("anchor");
  ASSERT_NE(anchor, nullptr);
  ASSERT_EQ(anchor->num_rows(), 2u);
  EXPECT_EQ(anchor->row(0)[3].AsString(), "L");
  EXPECT_EQ(anchor->row(1)[3].AsString(), "G");
  EXPECT_EQ(anchor->row(0)[1].AsString(), "http://h/p");  // base

  const relational::Table* relinfon = db.Find("relinfon");
  ASSERT_NE(relinfon, nullptr);
  ASSERT_GE(relinfon->num_rows(), 1u);
}

// -- LogTable --------------------------------------------------------------------

TEST(LogTableTest, FirstArrivalIsNew) {
  LogTable table;
  const auto d = table.Check("http://a/x", "q1", CloneState{2, P("L*2.G")});
  EXPECT_EQ(d.comparison, pre::LogComparison::kUnrelated);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.stats().new_entries, 1u);
}

TEST(LogTableTest, IdenticalSecondArrivalIsDuplicate) {
  LogTable table;
  table.Check("http://a/x", "q1", CloneState{2, P("L*2.G")});
  const auto d = table.Check("http://a/x", "q1", CloneState{2, P("L*2.G")});
  EXPECT_EQ(d.comparison, pre::LogComparison::kDuplicate);
  EXPECT_EQ(table.stats().duplicates, 1u);
  EXPECT_EQ(table.size(), 1u);
}

TEST(LogTableTest, KeyIncludesNodeQueryAndNumQ) {
  LogTable table;
  table.Check("http://a/x", "q1", CloneState{2, P("L")});
  // Different node: not a duplicate.
  EXPECT_EQ(table.Check("http://a/y", "q1", CloneState{2, P("L")}).comparison,
            pre::LogComparison::kUnrelated);
  // Different query: not a duplicate.
  EXPECT_EQ(table.Check("http://a/x", "q2", CloneState{2, P("L")}).comparison,
            pre::LogComparison::kUnrelated);
  // Different num_q: not a duplicate (Figure 5's visits b vs c).
  EXPECT_EQ(table.Check("http://a/x", "q1", CloneState{1, P("L")}).comparison,
            pre::LogComparison::kUnrelated);
}

TEST(LogTableTest, SubsetDropsSupersetRewrites) {
  LogTable table;
  table.Check("n", "q", CloneState{1, P("L*2.G")});
  EXPECT_EQ(table.Check("n", "q", CloneState{1, P("L*1.G")}).comparison,
            pre::LogComparison::kDuplicate);
  const auto d = table.Check("n", "q", CloneState{1, P("L*4.G")});
  EXPECT_EQ(d.comparison, pre::LogComparison::kSupersetRewrite);
  EXPECT_TRUE(d.rewritten->Equals(P("L.L*3.G")));
  // The entry was replaced by the wider bound: L*3 is now a duplicate.
  EXPECT_EQ(table.Check("n", "q", CloneState{1, P("L*3.G")}).comparison,
            pre::LogComparison::kDuplicate);
}

TEST(LogTableTest, UnrelatedPresCoexistUnderOneKey) {
  LogTable table;
  table.Check("n", "q", CloneState{1, P("L*2.G")});
  EXPECT_EQ(table.Check("n", "q", CloneState{1, P("G*2.L")}).comparison,
            pre::LogComparison::kUnrelated);
  EXPECT_EQ(table.size(), 2u);
  // Each maintains its own duplicate detection.
  EXPECT_EQ(table.Check("n", "q", CloneState{1, P("G*2.L")}).comparison,
            pre::LogComparison::kDuplicate);
}

TEST(LogTableTest, PurgeForgetsEverything) {
  LogTable table;
  table.Check("n", "q", CloneState{1, P("L")});
  table.Purge();
  EXPECT_EQ(table.size(), 0u);
  // Recomputation, not error.
  EXPECT_EQ(table.Check("n", "q", CloneState{1, P("L")}).comparison,
            pre::LogComparison::kUnrelated);
}

TEST(LogTableTest, PurgeQueryIsSelective) {
  LogTable table;
  table.Check("n", "q1", CloneState{1, P("L")});
  table.Check("n", "q2", CloneState{1, P("L")});
  table.PurgeQuery("q1");
  EXPECT_EQ(table.Check("n", "q1", CloneState{1, P("L")}).comparison,
            pre::LogComparison::kUnrelated);
  EXPECT_EQ(table.Check("n", "q2", CloneState{1, P("L")}).comparison,
            pre::LogComparison::kDuplicate);
}

// -- HttpServer --------------------------------------------------------------------

class HttpServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(web_.AddDocument("http://h/p", "<title>T</title>").ok());
    ASSERT_TRUE(web_.AddDocument("http://other/x", "elsewhere").ok());
    server_ = std::make_unique<HttpServer>("h", &web_, &net_);
    ASSERT_TRUE(server_->Start().ok());
    ASSERT_TRUE(net_.Listen({"c", 1},
                            [this](const net::Endpoint&, net::MessageType,
                                   const std::vector<uint8_t>& payload) {
                              HttpServer::FetchResponse resp;
                              ASSERT_TRUE(HttpServer::DecodeFetchResponse(
                                              payload, &resp)
                                              .ok());
                              responses_.push_back(resp);
                            })
                    .ok());
  }

  void Fetch(const std::string& url) {
    ASSERT_TRUE(net_.Send({"c", 1}, {"h", kHttpPort},
                          net::MessageType::kFetchRequest,
                          HttpServer::EncodeFetchRequest(url))
                    .ok());
    net_.RunUntilIdle();
  }

  web::WebGraph web_;
  net::SimNetwork net_;
  std::unique_ptr<HttpServer> server_;
  std::vector<HttpServer::FetchResponse> responses_;
};

TEST_F(HttpServerTest, ServesLocalDocument) {
  Fetch("http://h/p");
  ASSERT_EQ(responses_.size(), 1u);
  EXPECT_TRUE(responses_[0].found);
  EXPECT_EQ(responses_[0].html, "<title>T</title>");
  EXPECT_EQ(server_->fetches_served(), 1u);
}

TEST_F(HttpServerTest, NotFoundForMissing) {
  Fetch("http://h/absent");
  ASSERT_EQ(responses_.size(), 1u);
  EXPECT_FALSE(responses_[0].found);
  EXPECT_EQ(server_->not_found_count(), 1u);
}

TEST_F(HttpServerTest, RefusesToProxyOtherHosts) {
  Fetch("http://other/x");  // exists in the graph but hosted elsewhere
  ASSERT_EQ(responses_.size(), 1u);
  EXPECT_FALSE(responses_[0].found);
}

TEST_F(HttpServerTest, StopClosesPort) {
  server_->Stop();
  EXPECT_EQ(net_.Send({"c", 1}, {"h", kHttpPort},
                      net::MessageType::kFetchRequest,
                      HttpServer::EncodeFetchRequest("http://h/p"))
                .code(),
            StatusCode::kConnectionRefused);
}

// -- QueryServer (driven directly over a SimNetwork) ------------------------------

class QueryServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Two pages on host "h": /a links locally to /b; /b has the answer.
    web::PageSpec a;
    a.title = "start alpha";
    a.links = {{"/b", "to b"}};
    ASSERT_TRUE(web_.AddDocument("http://h/a", web::RenderHtml(a)).ok());
    web::PageSpec b;
    b.title = "target alpha";
    b.paragraphs = {"the beta answer"};
    ASSERT_TRUE(web_.AddDocument("http://h/b", web::RenderHtml(b)).ok());

    server_ = std::make_unique<QueryServer>("h", &web_, &net_);
    ASSERT_TRUE(server_->Start().ok());
    ASSERT_TRUE(net_.Listen({"user.site", 9000},
                            [this](const net::Endpoint&, net::MessageType type,
                                   const std::vector<uint8_t>& payload) {
                              ASSERT_EQ(type, net::MessageType::kReport);
                              serialize::Decoder dec(payload);
                              query::QueryReport qr;
                              ASSERT_TRUE(query::QueryReport::DecodeFrom(
                                              &dec, &qr)
                                              .ok());
                              reports_.push_back(std::move(qr));
                            })
                    .ok());
  }

  query::WebQuery MakeClone(const std::string& pre_text,
                            const std::string& where_keyword,
                            std::vector<std::string> dests) {
    auto compiled = disql::CompileDisql(
        "select d.url from document d such that \"http://h/a\" " + pre_text +
        " d where d.text contains \"" + where_keyword + "\"");
    EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
    query::WebQuery clone = compiled->web_query.Clone();
    clone.id.user = "t";
    clone.id.reply_host = "user.site";
    clone.id.reply_port = 9000;
    clone.id.query_number = 1;
    clone.dest_urls = std::move(dests);
    return clone;
  }

  void Deliver(const query::WebQuery& clone) {
    serialize::Encoder enc;
    clone.EncodeTo(&enc);
    ASSERT_TRUE(net_.Send({"user.site", 9000}, {"h", kQueryServerPort},
                          net::MessageType::kWebQuery, enc.Release())
                    .ok());
    net_.RunUntilIdle();
  }

  web::WebGraph web_;
  net::SimNetwork net_;
  std::unique_ptr<QueryServer> server_;
  std::vector<query::QueryReport> reports_;
};

TEST_F(QueryServerTest, EvaluatesAndReports) {
  Deliver(MakeClone("L*1", "beta", {"http://h/a"}));
  // Clone chain: /a evaluated (no beta) + forwarded to /b; /b evaluated.
  ASSERT_EQ(reports_.size(), 2u);
  EXPECT_EQ(reports_[0].node_reports[0].node_url, "http://h/a");
  ASSERT_EQ(reports_[0].node_reports[0].next_entries.size(), 1u);
  EXPECT_EQ(reports_[0].node_reports[0].next_entries[0].node_url,
            "http://h/b");
  ASSERT_EQ(reports_[1].node_reports.size(), 1u);
  ASSERT_EQ(reports_[1].node_reports[0].result_sets.size(), 1u);
  EXPECT_EQ(
      reports_[1].node_reports[0].result_sets[0].rows[0][0].AsString(),
      "http://h/b");
  EXPECT_EQ(server_->stats().node_queries_evaluated, 2u);
  EXPECT_EQ(server_->stats().answers_found, 1u);
  EXPECT_EQ(server_->stats().dead_ends, 1u);
}

TEST_F(QueryServerTest, DuplicateCloneDroppedAndReported) {
  const query::WebQuery clone = MakeClone("L*1", "beta", {"http://h/a"});
  Deliver(clone);
  reports_.clear();
  Deliver(clone.Clone());
  ASSERT_EQ(reports_.size(), 1u);
  EXPECT_TRUE(reports_[0].node_reports[0].duplicate_drop);
  EXPECT_EQ(server_->stats().duplicates_dropped, 1u);
}

TEST_F(QueryServerTest, DedupDisabledRecomputes) {
  QueryServerOptions options;
  options.dedup_enabled = false;
  auto server2 = std::make_unique<QueryServer>("h2", &web_, &net_, options);
  // Reuse the same web but a different host name: documents are on "h", so
  // use the original server with a fresh option set instead.
  server_->Stop();
  server_ = std::make_unique<QueryServer>("h", &web_, &net_, options);
  ASSERT_TRUE(server_->Start().ok());
  const query::WebQuery clone = MakeClone("N", "alpha", {"http://h/a"});
  Deliver(clone);
  Deliver(clone.Clone());
  EXPECT_EQ(server_->stats().node_queries_evaluated, 2u);
  EXPECT_EQ(server_->stats().duplicates_dropped, 0u);
}

TEST_F(QueryServerTest, MissingDocumentReportedNotCrashed) {
  Deliver(MakeClone("N", "alpha", {"http://h/ghost"}));
  ASSERT_EQ(reports_.size(), 1u);
  EXPECT_TRUE(reports_[0].node_reports[0].result_sets.empty());
  EXPECT_EQ(server_->stats().missing_documents, 1u);
}

TEST_F(QueryServerTest, PassiveTerminationOnRefusedReport) {
  net_.CloseListener({"user.site", 9000});
  serialize::Encoder enc;
  MakeClone("L*1", "beta", {"http://h/a"}).EncodeTo(&enc);
  ASSERT_TRUE(net_.Send({"x", 1}, {"h", kQueryServerPort},
                        net::MessageType::kWebQuery, enc.Release())
                  .ok());
  net_.RunUntilIdle();
  EXPECT_EQ(server_->stats().passive_terminations, 1u);
  // No forwarding happened after the refusal.
  EXPECT_EQ(server_->stats().clones_forwarded, 0u);
}

TEST_F(QueryServerTest, ActiveTerminationDropsFutureClones) {
  serialize::Encoder id_enc;
  query::WebQuery clone = MakeClone("L*1", "beta", {"http://h/a"});
  clone.id.EncodeTo(&id_enc);
  ASSERT_TRUE(net_.Send({"user.site", 9000}, {"h", kQueryServerPort},
                        net::MessageType::kTerminate, id_enc.Release())
                  .ok());
  net_.RunUntilIdle();
  EXPECT_EQ(server_->stats().active_terminations, 1u);
  Deliver(clone);
  EXPECT_EQ(server_->stats().node_queries_evaluated, 0u);
  EXPECT_TRUE(reports_.empty());
}

TEST_F(QueryServerTest, MalformedCloneCountedNotCrashed) {
  ASSERT_TRUE(net_.Send({"x", 1}, {"h", kQueryServerPort},
                        net::MessageType::kWebQuery,
                        std::vector<uint8_t>{1, 2, 3})
                  .ok());
  net_.RunUntilIdle();
  EXPECT_EQ(server_->stats().decode_errors, 1u);
}

TEST_F(QueryServerTest, DatabaseCachingCountsHits) {
  QueryServerOptions options;
  options.cache_databases = true;
  options.dedup_enabled = false;  // force recomputation
  server_->Stop();
  server_ = std::make_unique<QueryServer>("h", &web_, &net_, options);
  ASSERT_TRUE(server_->Start().ok());
  const query::WebQuery clone = MakeClone("N", "alpha", {"http://h/a"});
  Deliver(clone);
  Deliver(clone.Clone());
  EXPECT_EQ(server_->stats().db_constructions, 1u);
  EXPECT_EQ(server_->stats().db_cache_hits, 1u);
}

TEST_F(QueryServerTest, DbCacheEvictsLeastRecentlyUsed) {
  // A third, deliberately tiny page so A+C fits where A+B+C does not.
  web::PageSpec c;
  c.title = "c alpha";
  ASSERT_TRUE(web_.AddDocument("http://h/c", web::RenderHtml(c)).ok());

  QueryServerOptions options;
  options.cache_databases = true;
  options.dedup_enabled = false;

  // Measurement pass with an unbounded cache: learn each node DB's cost.
  server_->Stop();
  server_ = std::make_unique<QueryServer>("h", &web_, &net_, options);
  ASSERT_TRUE(server_->Start().ok());
  Deliver(MakeClone("N", "alpha", {"http://h/a"}));
  const uint64_t bytes_a = server_->stats().db_cache_bytes;
  Deliver(MakeClone("N", "alpha", {"http://h/b"}));
  const uint64_t bytes_ab = server_->stats().db_cache_bytes;
  Deliver(MakeClone("N", "alpha", {"http://h/c"}));
  const uint64_t bytes_abc = server_->stats().db_cache_bytes;
  ASSERT_GT(bytes_a, 0u);
  ASSERT_GT(bytes_ab, bytes_a);
  ASSERT_GT(bytes_abc, bytes_ab);
  // C strictly smaller than B, so evicting B alone brings A+B+C under A+B.
  ASSERT_LT(bytes_abc - bytes_ab, bytes_ab - bytes_a);
  EXPECT_EQ(server_->stats().db_cache_evictions, 0u);  // unbounded: never

  // Bounded pass: budget holds exactly {A, B}.
  options.db_cache_max_bytes = bytes_ab;
  server_->Stop();
  server_ = std::make_unique<QueryServer>("h", &web_, &net_, options);
  ASSERT_TRUE(server_->Start().ok());
  Deliver(MakeClone("N", "alpha", {"http://h/a"}));
  Deliver(MakeClone("N", "alpha", {"http://h/b"}));
  EXPECT_EQ(server_->stats().db_cache_evictions, 0u);
  // Re-touching A moves it to the front: B is now least recently used.
  Deliver(MakeClone("N", "alpha", {"http://h/a"}));
  EXPECT_EQ(server_->stats().db_cache_hits, 1u);
  // Inserting C exceeds the budget and must evict B — not A (recently
  // touched) and not C (just inserted).
  Deliver(MakeClone("N", "alpha", {"http://h/c"}));
  EXPECT_EQ(server_->stats().db_cache_evictions, 1u);
  EXPECT_EQ(server_->stats().db_cache_bytes, bytes_a + (bytes_abc - bytes_ab));
  EXPECT_EQ(server_->stats().db_constructions, 3u);
  Deliver(MakeClone("N", "alpha", {"http://h/a"}));  // hit: A survived
  EXPECT_EQ(server_->stats().db_cache_hits, 2u);
  EXPECT_EQ(server_->stats().db_constructions, 3u);
  Deliver(MakeClone("N", "alpha", {"http://h/b"}));  // miss: B was the victim
  EXPECT_EQ(server_->stats().db_constructions, 4u);
}

// -- Cross-query result sharing (PROTOCOL.md §9.1) ---------------------------

TEST_F(QueryServerTest, ResultCacheVersionBumpNeverServesStaleRows) {
  QueryServerOptions options;
  options.share_results = true;
  options.dedup_enabled = false;  // force re-evaluation so the cache is hit
  server_->Stop();
  server_ = std::make_unique<QueryServer>("h", &web_, &net_, options);
  ASSERT_TRUE(server_->Start().ok());

  const query::WebQuery clone = MakeClone("N", "alpha", {"http://h/a"});
  Deliver(clone);
  EXPECT_EQ(server_->stats().result_cache_misses, 1u);
  EXPECT_EQ(server_->stats().result_cache_hits, 0u);
  ASSERT_EQ(reports_.size(), 1u);

  // Same (document, version, node-query form) again: served from the cache,
  // and the hit-path report is byte-identical to the miss-path one — the
  // cache is a wall-clock optimization, never an observable behavior change.
  Deliver(clone.Clone());
  EXPECT_EQ(server_->stats().result_cache_hits, 1u);
  EXPECT_EQ(server_->stats().result_cache_misses, 1u);
  ASSERT_EQ(reports_.size(), 2u);
  serialize::Encoder miss_enc;
  serialize::Encoder hit_enc;
  reports_[0].EncodeTo(&miss_enc);
  reports_[1].EncodeTo(&hit_enc);
  EXPECT_EQ(miss_enc.data(), hit_enc.data());
  ASSERT_FALSE(reports_[1].node_reports[0].result_sets.empty());
  EXPECT_FALSE(reports_[1].node_reports[0].result_sets[0].rows.empty());

  // Editing /a bumps its version, so the cached entry's key no longer
  // matches. The keyword is gone from the edited page: a stale hit would be
  // visible as a phantom row.
  web::PageSpec edited;
  edited.title = "start gamma";
  edited.links = {{"/b", "to b"}};
  ASSERT_TRUE(
      web_.UpdateDocument("http://h/a", web::RenderHtml(edited)).ok());
  Deliver(clone.Clone());
  EXPECT_EQ(server_->stats().result_cache_misses, 2u);
  EXPECT_EQ(server_->stats().result_cache_hits, 1u);
  ASSERT_EQ(reports_.size(), 3u);
  for (const auto& rs : reports_[2].node_reports[0].result_sets) {
    EXPECT_TRUE(rs.rows.empty());
  }
}

TEST_F(QueryServerTest, ResultCacheEvictsLeastRecentlyUsed) {
  // A third page so three distinct (document, node query) entries exist.
  web::PageSpec c;
  c.title = "c alpha";
  ASSERT_TRUE(web_.AddDocument("http://h/c", web::RenderHtml(c)).ok());

  QueryServerOptions options;
  options.share_results = true;
  options.dedup_enabled = false;

  // Measurement pass with an unbounded cache: learn each entry's cost.
  server_->Stop();
  server_ = std::make_unique<QueryServer>("h", &web_, &net_, options);
  ASSERT_TRUE(server_->Start().ok());
  Deliver(MakeClone("N", "alpha", {"http://h/a"}));
  const uint64_t bytes_a = server_->stats().result_cache_bytes;
  Deliver(MakeClone("N", "alpha", {"http://h/b"}));
  const uint64_t bytes_ab = server_->stats().result_cache_bytes;
  Deliver(MakeClone("N", "alpha", {"http://h/c"}));
  const uint64_t bytes_abc = server_->stats().result_cache_bytes;
  ASSERT_GT(bytes_a, 0u);
  ASSERT_GT(bytes_ab, bytes_a);
  ASSERT_GT(bytes_abc, bytes_ab);
  // Evicting B alone must bring A+B+C back under the A+B budget.
  ASSERT_LE(bytes_abc - bytes_ab, bytes_ab - bytes_a);
  EXPECT_EQ(server_->stats().result_cache_evictions, 0u);  // unbounded: never

  // Bounded pass: budget holds exactly {A, B}.
  options.result_cache_max_bytes = bytes_ab;
  server_->Stop();
  server_ = std::make_unique<QueryServer>("h", &web_, &net_, options);
  ASSERT_TRUE(server_->Start().ok());
  Deliver(MakeClone("N", "alpha", {"http://h/a"}));
  Deliver(MakeClone("N", "alpha", {"http://h/b"}));
  EXPECT_EQ(server_->stats().result_cache_evictions, 0u);
  // Re-touching A moves it to the front: B is now least recently used.
  Deliver(MakeClone("N", "alpha", {"http://h/a"}));
  EXPECT_EQ(server_->stats().result_cache_hits, 1u);
  // Inserting C exceeds the budget and must evict B — not A (recently
  // touched) and not C (just inserted).
  Deliver(MakeClone("N", "alpha", {"http://h/c"}));
  EXPECT_EQ(server_->stats().result_cache_evictions, 1u);
  EXPECT_EQ(server_->stats().result_cache_bytes,
            bytes_a + (bytes_abc - bytes_ab));
  Deliver(MakeClone("N", "alpha", {"http://h/a"}));  // hit: A survived
  EXPECT_EQ(server_->stats().result_cache_hits, 2u);
  Deliver(MakeClone("N", "alpha", {"http://h/b"}));  // miss: B was the victim
  EXPECT_EQ(server_->stats().result_cache_misses, 4u);
  EXPECT_EQ(server_->stats().result_cache_hits, 2u);
}

TEST_F(QueryServerTest, ResultCacheColdAfterRestartWhileBatchMembersSurvive) {
  server_->Stop();
  MemoryPersistBackend backend{PersistFaultRules{}};
  QueryServerOptions options;
  options.share_results = true;
  options.dedup_enabled = false;
  options.persist.enabled = true;
  options.persist.snapshot_every_clones = 0;
  options.persist.wal_compact_bytes = 0;
  options.admission.max_pending = 4;
  // Queued clones drain one per second — slow enough that a crash at 500ms
  // catches the batch members still in the admission queue, WAL-admitted
  // but not yet evaluated.
  options.admission.service_time = 1 * kSecond;
  server_ = std::make_unique<QueryServer>("h", &web_, &net_, options);
  server_->SetPersistence(&backend);
  ASSERT_TRUE(server_->Start().ok());

  // Warm the cache: one miss, then one hit proves the entry is live.
  const query::WebQuery warm = MakeClone("N", "alpha", {"http://h/a"});
  Deliver(warm);
  Deliver(warm.Clone());
  EXPECT_EQ(server_->stats().result_cache_misses, 1u);
  EXPECT_EQ(server_->stats().result_cache_hits, 1u);
  ASSERT_EQ(reports_.size(), 2u);

  // A two-member batch envelope: admitted as one kBatchAdmitted WAL record
  // on arrival, then crashed out of the admission queue before the drain
  // timer fires. Note the members re-use the warm clone's node query — if
  // the cache survived the crash they would hit after recovery.
  query::CloneBatch batch;
  batch.clones.push_back(MakeClone("N", "alpha", {"http://h/a"}));
  batch.clones.back().id.query_number = 2;
  batch.clones.push_back(MakeClone("N", "alpha", {"http://h/b"}));
  batch.clones.back().id.query_number = 3;
  serialize::Encoder enc;
  batch.EncodeTo(&enc);
  net_.ScheduleAfter(500 * kMillisecond, [this] { server_->Crash(); });
  ASSERT_TRUE(net_.Send({"user.site", 9000}, {"h", kQueryServerPort},
                        net::MessageType::kCloneBatch, enc.Release())
                  .ok());
  net_.RunUntilIdle();
  EXPECT_EQ(server_->stats().clone_batches_received, 1u);
  EXPECT_EQ(server_->stats().clone_batch_members_received, 2u);
  ASSERT_EQ(reports_.size(), 2u);  // nothing evaluated before the crash
  EXPECT_EQ(server_->stats().result_cache_bytes, 0u);  // cache died with it

  // Restart: both WAL-admitted members are recovered and reprocessed, but
  // the result cache is rebuilt cold — the snapshot/WAL never carry it
  // (DurableServerState has no cache fields), so the warm entry is gone and
  // member 2's identical node query MISSES instead of hitting.
  ASSERT_TRUE(server_->Restart().ok());
  EXPECT_EQ(server_->stats().recovered_clones, 2u);
  net_.RunUntilIdle();
  ASSERT_EQ(reports_.size(), 4u);
  std::multiset<uint32_t> recovered_queries = {reports_[2].id.query_number,
                                               reports_[3].id.query_number};
  EXPECT_EQ(recovered_queries, (std::multiset<uint32_t>{2, 3}));
  EXPECT_EQ(server_->stats().result_cache_misses, 3u);  // both members cold
  EXPECT_EQ(server_->stats().result_cache_hits, 1u);    // no post-crash hit
  EXPECT_GT(server_->stats().result_cache_bytes, 0u);   // rebuilt, not lost
}

TEST_F(QueryServerTest, LogPurgePeriodCausesRecomputationOnly) {
  QueryServerOptions options;
  options.log_purge_every = 1;  // purge after every clone
  server_->Stop();
  server_ = std::make_unique<QueryServer>("h", &web_, &net_, options);
  ASSERT_TRUE(server_->Start().ok());
  const query::WebQuery clone = MakeClone("N", "alpha", {"http://h/a"});
  Deliver(clone);
  Deliver(clone.Clone());
  // Both processed (no dedup across the purge), results identical.
  EXPECT_EQ(server_->stats().node_queries_evaluated, 2u);
  ASSERT_EQ(reports_.size(), 2u);
  ASSERT_FALSE(reports_[0].node_reports[0].result_sets.empty());
  ASSERT_FALSE(reports_[1].node_reports[0].result_sets.empty());
}

// -- Durability: recovery stats (PROTOCOL.md §8) -----------------------------

TEST_F(QueryServerTest, RecoveryStatsDistinguishThreeRestartPaths) {
  server_->Stop();
  MemoryPersistBackend backend{PersistFaultRules{}};
  QueryServerOptions options;
  options.persist.enabled = true;
  options.persist.snapshot_every_clones = 0;  // no cadence snapshots yet
  options.persist.wal_compact_bytes = 0;      // no size-triggered snapshots
  server_ = std::make_unique<QueryServer>("h", &web_, &net_, options);
  server_->SetPersistence(&backend);
  ASSERT_TRUE(server_->Start().ok());

  // Path 1: cold start — storage is empty, the restart recovers nothing.
  server_->Crash();
  ASSERT_TRUE(server_->Restart().ok());
  EXPECT_EQ(server_->stats().cold_starts, 1u);
  EXPECT_EQ(server_->stats().recovered_from_snapshot, 0u);
  EXPECT_EQ(server_->stats().replayed_wal_records, 0u);

  // Path 2: WAL replay — one processed clone leaves an admitted/completed
  // record pair in the log, and no snapshot exists. Replaying a log is NOT
  // a cold start: the cold_starts counter must not move.
  Deliver(MakeClone("N", "alpha", {"http://h/a"}));
  EXPECT_EQ(server_->stats().wal_records_appended, 2u);
  server_->Crash();
  ASSERT_TRUE(server_->Restart().ok());
  EXPECT_EQ(server_->stats().cold_starts, 1u);  // unchanged
  EXPECT_EQ(server_->stats().recovered_from_snapshot, 0u);
  EXPECT_EQ(server_->stats().replayed_wal_records, 2u);
  EXPECT_EQ(server_->stats().recovered_clones, 0u);  // it had completed

  // Path 3: snapshot recovery — a cadence-1 server over the same storage
  // boots by replaying the old log (counted), snapshots after its first
  // clone (truncating the log), and its next restart loads the snapshot
  // with nothing left to replay.
  server_->Stop();
  QueryServerOptions snap_options;
  snap_options.persist.enabled = true;
  snap_options.persist.snapshot_every_clones = 1;
  server_ = std::make_unique<QueryServer>("h", &web_, &net_, snap_options);
  server_->SetPersistence(&backend);
  ASSERT_TRUE(server_->Restart().ok());
  EXPECT_EQ(server_->stats().replayed_wal_records, 2u);
  Deliver(MakeClone("N", "beta", {"http://h/b"}));
  EXPECT_EQ(server_->stats().snapshots_written, 1u);
  EXPECT_EQ(backend.WalBytes(), 0u);  // compaction truncated the log
  server_->Crash();
  ASSERT_TRUE(server_->Restart().ok());
  EXPECT_EQ(server_->stats().recovered_from_snapshot, 1u);
  EXPECT_EQ(server_->stats().replayed_wal_records, 2u);  // unchanged
  EXPECT_EQ(server_->stats().cold_starts, 0u);
}

TEST(RecoveryStatsFormatTest, FormatRunStatsEmitsRecoveryCounters) {
  core::RunOutcome outcome;
  outcome.server_stats.recovered_from_snapshot = 1;
  outcome.server_stats.replayed_wal_records = 2;
  outcome.server_stats.cold_starts = 3;
  outcome.server_stats.snapshots_written = 4;
  const std::string text = core::FormatRunStats(outcome);
  EXPECT_NE(text.find("recovered_from_snapshot: 1"), std::string::npos);
  EXPECT_NE(text.find("replayed_wal_records: 2"), std::string::npos);
  EXPECT_NE(text.find("cold_starts: 3"), std::string::npos);
  EXPECT_NE(text.find("snapshots_written: 4"), std::string::npos);
}

}  // namespace
}  // namespace webdis::server
