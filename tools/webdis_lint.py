#!/usr/bin/env python3
"""webdis-lint: repo-specific invariant checker, run in CI and under ctest.

Enforces invariants that neither the compiler nor generic linters know about,
the ones whose violation breaks distributed termination or reproducibility
(see CONTRIBUTING.md "Static analysis & sanitizers"):

  wire-parity   Every `MessageType::k<Name> = <N>` constant in
                src/net/transport.h must have (a) a `payload:` annotation
                naming its codec, (b) the named EncodeTo/DecodeFrom pair (or
                free-function codec pair) declared somewhere under src/,
                (c) a `case MessageType::k<Name>` in MessageTypeToString
                (src/net/transport.cc), (d) a golden frame referencing
                `MessageType::k<Name>` in tests/wire_golden_test.cc, and
                (e) a "<Name> (type <N>)" entry in PROTOCOL.md. A wire
                message nobody can decode — or whose bytes can drift
                unnoticed — is how one lost report stalls completion forever.

  wal-parity    Every `WalRecordType::k<Name> = <N>` constant in
                src/server/persist.h must have (a) a `payload:` annotation
                naming its codec, (b) the named EncodeTo/DecodeFrom pair
                declared somewhere under src/, (c) a
                `case WalRecordType::k<Name>` in WalRecordTypeToString
                (src/server/persist.cc), (d) a golden image referencing
                `WalRecordType::k<Name>` in tests/persist_golden_test.cc, and
                (e) a "<Name> (wal record <N>)" entry in PROTOCOL.md. A WAL
                record that cannot be replayed — or whose bytes drift
                unnoticed — silently breaks crash recovery. Skipped when
                src/server/persist.h is absent.

  clock         No direct std::chrono::{system,steady,high_resolution}_clock,
                rand()/srand(), std::random_device, or std::mt19937 outside
                src/net/tcp.cc and src/common/clock.h. Everything else goes
                through common/clock.h (SimTime) and common/rng.h, keeping
                SimNetwork schedules deterministic and fault tests
                reproducible seed-for-seed.

  naked-new     No naked `new` under src/. Ownership is unique_ptr /
                make_unique everywhere; the one sanctioned exception pattern
                (private constructor behind a factory) carries an allow
                comment.

  confinement   The parallel stepper (src/net/parallel_sim.cc) runs
                different endpoints' handlers concurrently inside a time
                slice, which is only sound while every mutable QueryServer /
                UserSite field is either WEBDIS_GUARDED_BY a mutex or
                confined to its own endpoint's handler. Confinement cannot
                be checked mechanically, so it is recorded: each audited
                field is listed in CONFINEMENT_ALLOWLIST below. A new field
                that is neither annotated nor listed fails the lint — add
                the annotation, or audit that only the owning endpoint's
                handler ever touches it and extend the allowlist. Stale
                allowlist entries (field renamed/removed) also fail, so the
                audit record cannot rot. See DESIGN.md "Parallel execution".

  lock-order    Builds the directed mutex-acquisition graph under src/ from
                two sources: WEBDIS_ACQUIRED_BEFORE annotations on
                webdis::Mutex declarations, and lexically nested MutexLock
                scopes (lock B taken while lock A's scope is still open).
                Fails when (a) two mutexes nest without a covering
                WEBDIS_ACQUIRED_BEFORE annotation on the outer mutex,
                (b) the union graph has a cycle — a latent deadlock even if
                today's schedules never interleave it — or (c) an annotation
                names a mutex that is not declared anywhere (stale audit
                record).

  iter-determinism
                Flags range-for loops over std::unordered_map /
                std::unordered_set inside functions that feed serialization
                (EncodeTo / serialize::Encoder / Put* / FormatRunStats).
                Hash-table iteration order is implementation-defined, so
                bytes produced from it drift across stdlibs and runs —
                breaking golden frames, WAL replay equivalence, and the
                bit-identical parallel-vs-sequential oracle. Materialize
                into a sorted container first, or iterate a std::map.

  web-interned-tables
                The arena-backed document tables in src/web/graph.h (the
                region between the `webdis-lint: interned-tables-begin` /
                `-end` markers) must key and store interned ids or
                string_views into the interner arena — never owning
                std::string copies. One raw std::string per document is the
                difference between ~300 bytes and ~kilobytes of table
                machinery per document at the 10^5–10^6-document scale
                bench/p1_parallel gates on. Missing markers fail too, so the
                audit region cannot silently disappear. Skipped when
                src/web/graph.h is absent.

Suppressions: a comment containing `webdis-lint: allow(<rule>)` on the same
line, or anywhere in the contiguous comment block immediately above the
flagged line, silences that rule for that line.

Exit status: 0 clean, 1 violations (printed one per line, grep-able
`file:line: [rule] message`), 2 usage/internal error.
"""

from __future__ import annotations

import argparse
import os
import re
import sys

SOURCE_DIRS = ("src", "tests", "bench", "examples")
SOURCE_EXTS = (".cc", ".h")

# Files allowed to touch wall clocks / raw randomness directly.
CLOCK_ALLOWLIST = {
    os.path.join("src", "net", "tcp.cc"),
    os.path.join("src", "common", "clock.h"),
}

CLOCK_PATTERNS = [
    (re.compile(r"std::chrono::system_clock"), "std::chrono::system_clock"),
    (re.compile(r"std::chrono::steady_clock"), "std::chrono::steady_clock"),
    (re.compile(r"std::chrono::high_resolution_clock"),
     "std::chrono::high_resolution_clock"),
    (re.compile(r"(?<![:\w])s?rand\s*\("), "rand()/srand()"),
    (re.compile(r"std::random_device"), "std::random_device"),
    (re.compile(r"std::mt19937"), "std::mt19937"),
]

NAKED_NEW = re.compile(r"(?<![:\w])new\s+[A-Za-z_][\w:]*(\s*[<({[]|\s*[;,)])")

# Classes whose handlers the parallel stepper may run concurrently with
# other endpoints', and the audited per-endpoint-confined fields of each.
# Trailing-underscore names only: nested helper structs (Forward, QueuedClone,
# PendingAck, CachedDatabase, QueryRun, ...) follow the plain-member naming
# convention and are data, not endpoint state.
CONFINEMENT_CLASSES = {
    os.path.join("src", "server", "query_server.h"): "QueryServer",
    os.path.join("src", "client", "user_site.h"): "UserSite",
}
CONFINEMENT_ALLOWLIST = {
    "QueryServer": {
        # Identity / wiring, set at construction and read-only afterwards.
        "host_", "web_", "transport_", "options_", "clock_",
        # Per-server protocol state: every mutation happens inside this
        # server's own OnMessage/timer handlers (one endpoint = one
        # partition, handlers within a partition run sequentially).
        "stats_", "sender_", "receiver_", "breakers_", "pending_clones_",
        "drain_timer_", "log_table_", "terminated_queries_", "pending_acks_",
        "next_ack_token_", "db_cache_lru_", "db_cache_index_",
        "db_cache_bytes_", "scratch_db_", "started_",
        # Durability (server/persist): the backend pointer is set before the
        # run starts; the WAL id counter and snapshot cadence counter are
        # mutated only inside this server's own message/timer handlers.
        "persist_", "next_wal_id_", "clones_since_snapshot_",
        # Cross-host observer sink: the engine wraps it in a mutex when
        # worker_threads > 0 (core::Engine::ObserveVisits); the field itself
        # is only assigned before the run starts.
        "visit_observer_",
        # Cross-query sharing (PROTOCOL.md §9): the result cache and the
        # batch staging buffers are per-server state, touched only from this
        # server's own OnMessage and flush-timer handlers. The cache is
        # *shared across queries* but not across endpoints — concurrent
        # queries reach one server's cache strictly through that server's
        # serialized partition.
        "result_cache_lru_", "result_cache_index_", "result_cache_bytes_",
        "staged_clones_", "staged_reports_", "flush_timer_",
        "wal_pending_flush_",
        # Dynamic web & churn (PROTOCOL.md §10): flipped only by Retire(),
        # which the engine invokes from a mutation timer — churn runs are
        # restricted to the sequential stepper (workers == 0), and under the
        # parallel stepper the flag is written by nobody.
        "retired_",
    },
    "UserSite": {
        # Identity / wiring, construction-time only.
        "host_", "transport_", "options_", "clock_",
        # All mutated only from this site's result-socket / timer handlers,
        # which share the user site's single host partition.
        "sender_", "receiver_", "next_port_", "next_query_number_", "runs_",
        "seen_rows_",
        # §10.4 oracle hook: assigned before the run starts, invoked only
        # from this site's result-socket handlers (single host partition).
        "report_observer_",
    },
}
FIELD_DECL = re.compile(r"\b(\w+_)\s*(?:=\s*[^;=]*)?;\s*$")
GUARDED_FIELD = re.compile(r"\b(\w+_)\s+WEBDIS_GUARDED_BY\s*\(")

ENUM_CONSTANT = re.compile(
    r"^\s*k(?P<name>\w+)\s*=\s*(?P<num>\d+)\s*,\s*(//\s*(?P<comment>.*))?$")
PAYLOAD_ANNOTATION = re.compile(
    r"payload:\s*(?P<kind>struct|codec|u8|u16|u32|u64|string|raw|none)"
    r"(\s+(?P<detail>\S+))?")

# webdis::Mutex declaration, optionally carrying an ordering annotation:
#   Mutex mu_;
#   Mutex mu_ WEBDIS_ACQUIRED_BEFORE(log_mu_);
MUTEX_DECL = re.compile(
    r"\bMutex\s+(?P<name>\w+)\s*"
    r"(?:WEBDIS_ACQUIRED_BEFORE\s*\((?P<after>[^)]*)\))?\s*;")
# Scoped acquisition: MutexLock lock(&mu_); — the argument may be a member
# access chain (&self->mu_, &site.mu_); the trailing identifier is the mutex.
MUTEX_LOCK = re.compile(r"\bMutexLock\s+\w+\s*\(\s*&\s*(?P<target>[\w.>-]+)\s*\)")

UNORDERED_DECL = re.compile(
    r"\bstd::unordered_(?:map|set|multimap|multiset)\s*<[^;{}]*?>\s+"
    r"(?P<name>\w+)\s*[;={(]")
RANGE_FOR = re.compile(
    r"\bfor\s*\(\s*(?:const\s+)?[\w:<>,*&\s\[\]]+?:\s*(?P<expr>[\w.>-]+)\s*\)")
SERIAL_MARKER = re.compile(
    r"\b(EncodeTo|serialize::Encoder|Encoder\s*[&*]|"
    r"Put(?:U8|U16|U32|U64|Varint|Bool|String|Raw|LengthPrefixed)|"
    r"FormatRunStats)\b")
# A '{' opens a function (or lambda) body when the text before it ends with
# the parameter list's ')' plus optional qualifiers. Control-flow statements
# (for/if/while/switch/catch) also match ') {' and are excluded by keyword.
CONTROL_KEYWORDS = {"for", "if", "while", "switch", "catch", "return"}
FUNC_QUALIFIER_TAIL = re.compile(
    r"\)\s*(?:const|noexcept|override|final|mutable|->\s*[\w:<>,*&\s]+)*\s*$")

# web-interned-tables: the audited region of src/web/graph.h and the raw
# owning-string pattern it must never contain. `std::string_view` does not
# match (no word boundary before the underscore).
INTERNED_TABLES_BEGIN = "webdis-lint: interned-tables-begin"
INTERNED_TABLES_END = "webdis-lint: interned-tables-end"
RAW_STD_STRING = re.compile(r"\bstd::string\b")

ALLOW = re.compile(r"webdis-lint:\s*allow\(([\w,-]+)\)")
LINE_COMMENT = re.compile(r"//.*$")
STRING_LITERAL = re.compile(r'"(\\.|[^"\\])*"')
CHAR_LITERAL = re.compile(r"'(\\.|[^'\\])*'")


class Linter:
    def __init__(self, root: str) -> None:
        self.root = root
        self.errors: list[str] = []

    def error(self, rel: str, line: int, rule: str, msg: str) -> None:
        self.errors.append(f"{rel}:{line}: [{rule}] {msg}")

    # -- helpers -------------------------------------------------------------

    def read(self, rel: str) -> str | None:
        path = os.path.join(self.root, rel)
        if not os.path.isfile(path):
            return None
        with open(path, encoding="utf-8", errors="replace") as f:
            return f.read()

    def source_files(self) -> list[str]:
        out = []
        for d in SOURCE_DIRS:
            base = os.path.join(self.root, d)
            for dirpath, _, files in os.walk(base):
                for name in sorted(files):
                    if name.endswith(SOURCE_EXTS):
                        out.append(os.path.relpath(
                            os.path.join(dirpath, name), self.root))
        return sorted(out)

    @staticmethod
    def strip_code(line: str) -> str:
        """Removes string/char literals and // comments: what's left is code."""
        line = STRING_LITERAL.sub('""', line)
        line = CHAR_LITERAL.sub("''", line)
        return LINE_COMMENT.sub("", line)

    @staticmethod
    def suppressed(lines: list[str], idx: int, rule: str) -> bool:
        """True if line idx (0-based) carries or follows an allow(rule)."""
        def allows(text: str) -> bool:
            m = ALLOW.search(text)
            return m is not None and rule in m.group(1).split(",")

        if allows(lines[idx]):
            return True
        j = idx - 1
        while j >= 0 and lines[j].lstrip().startswith(("//", "///")):
            if allows(lines[j]):
                return True
            j -= 1
        return False

    # -- wire-parity ---------------------------------------------------------

    def check_wire_parity(self) -> None:
        transport_h = self.read(os.path.join("src", "net", "transport.h"))
        if transport_h is None:
            self.error("src/net/transport.h", 1, "wire-parity",
                       "file missing — cannot check MessageType parity")
            return
        m = re.search(
            r"enum\s+class\s+MessageType[^{]*\{(?P<body>.*?)\};",
            transport_h, re.DOTALL)
        if m is None:
            self.error("src/net/transport.h", 1, "wire-parity",
                       "enum class MessageType not found")
            return
        body_start_line = transport_h[:m.start("body")].count("\n") + 1

        transport_cc = self.read(os.path.join("src", "net", "transport.cc")) or ""
        golden = self.read(os.path.join("tests", "wire_golden_test.cc")) or ""
        protocol = self.read("PROTOCOL.md") or ""
        # Every header under src/, for codec symbol lookups.
        src_headers = ""
        for rel in self.source_files():
            if rel.startswith("src" + os.sep) and rel.endswith(".h"):
                src_headers += self.read(rel) or ""

        constants: list[tuple[str, int]] = []
        for off, raw in enumerate(m.group("body").splitlines()):
            em = ENUM_CONSTANT.match(raw)
            if em is None:
                continue
            name, num = em.group("name"), int(em.group("num"))
            line = body_start_line + off
            constants.append((name, num))
            rel = "src/net/transport.h"

            comment = em.group("comment") or ""
            pm = PAYLOAD_ANNOTATION.search(comment)
            if pm is None:
                self.error(rel, line, "wire-parity",
                           f"k{name} has no `// payload: ...` annotation")
            else:
                kind, detail = pm.group("kind"), pm.group("detail")
                if kind == "struct":
                    if detail is None:
                        self.error(rel, line, "wire-parity",
                                   f"k{name}: `payload: struct` needs a type")
                    else:
                        tail = detail.split("::")[-1]
                        if not re.search(
                                rf"DecodeFrom\(serialize::Decoder\*\s*\w+,\s*"
                                rf"{tail}\*", src_headers):
                            self.error(
                                rel, line, "wire-parity",
                                f"k{name}: no DecodeFrom(Decoder*, {tail}*) "
                                "declared under src/")
                        if not re.search(
                                rf"{tail}[^;]*\{{|struct\s+{tail}|class\s+{tail}",
                                src_headers) or "EncodeTo" not in src_headers:
                            self.error(
                                rel, line, "wire-parity",
                                f"k{name}: no EncodeTo for {tail} under src/")
                elif kind == "codec":
                    if detail is None or "/" not in detail:
                        self.error(rel, line, "wire-parity",
                                   f"k{name}: `payload: codec` needs Enc/Dec")
                    else:
                        for fn in detail.split("/"):
                            if not re.search(rf"\b{fn}\s*\(", src_headers):
                                self.error(
                                    rel, line, "wire-parity",
                                    f"k{name}: codec function {fn}() not "
                                    "declared under src/")
                # primitives (u64 etc.): nothing further to resolve

            if f"case MessageType::k{name}" not in transport_cc:
                self.error(rel, line, "wire-parity",
                           f"k{name} missing from MessageTypeToString "
                           "(src/net/transport.cc)")
            if f"MessageType::k{name}" not in golden:
                self.error(rel, line, "wire-parity",
                           f"k{name} has no golden frame in "
                           "tests/wire_golden_test.cc")
            if not re.search(rf"\b{name}\s*\(type\s+{num}\)", protocol):
                self.error(rel, line, "wire-parity",
                           f"k{name}: PROTOCOL.md lacks a "
                           f"\"{name} (type {num})\" entry")

        # Reverse direction: golden tests / ToString cases must not reference
        # constants that no longer exist (stale goldens pass vacuously).
        declared = {name for name, _ in constants}
        for src_rel, text in (("tests/wire_golden_test.cc", golden),
                              ("src/net/transport.cc", transport_cc)):
            for rm in re.finditer(r"MessageType::k(\w+)", text):
                if rm.group(1) not in declared:
                    line = text[:rm.start()].count("\n") + 1
                    self.error(src_rel, line, "wire-parity",
                               f"references MessageType::k{rm.group(1)}, "
                               "which is not declared in transport.h")

    # -- wal-parity ----------------------------------------------------------

    def check_wal_parity(self) -> None:
        rel = os.path.join("src", "server", "persist.h")
        persist_h = self.read(rel)
        if persist_h is None:
            return  # tree has no durability layer — nothing to check
        rel = "src/server/persist.h"
        m = re.search(
            r"enum\s+class\s+WalRecordType[^{]*\{(?P<body>.*?)\};",
            persist_h, re.DOTALL)
        if m is None:
            self.error(rel, 1, "wal-parity",
                       "enum class WalRecordType not found")
            return
        body_start_line = persist_h[:m.start("body")].count("\n") + 1

        persist_cc = self.read(os.path.join("src", "server", "persist.cc")) or ""
        golden = self.read(
            os.path.join("tests", "persist_golden_test.cc")) or ""
        protocol = self.read("PROTOCOL.md") or ""
        src_headers = ""
        for hdr in self.source_files():
            if hdr.startswith("src" + os.sep) and hdr.endswith(".h"):
                src_headers += self.read(hdr) or ""

        constants: list[tuple[str, int]] = []
        for off, raw in enumerate(m.group("body").splitlines()):
            em = ENUM_CONSTANT.match(raw)
            if em is None:
                continue
            name, num = em.group("name"), int(em.group("num"))
            line = body_start_line + off
            constants.append((name, num))

            comment = em.group("comment") or ""
            pm = PAYLOAD_ANNOTATION.search(comment)
            if pm is None:
                self.error(rel, line, "wal-parity",
                           f"k{name} has no `// payload: ...` annotation")
            elif pm.group("kind") == "struct":
                detail = pm.group("detail")
                if detail is None:
                    self.error(rel, line, "wal-parity",
                               f"k{name}: `payload: struct` needs a type")
                else:
                    tail = detail.split("::")[-1]
                    if not re.search(
                            rf"DecodeFrom\(serialize::Decoder\*\s*\w*,?\s*"
                            rf"{tail}\*", src_headers):
                        self.error(
                            rel, line, "wal-parity",
                            f"k{name}: no DecodeFrom(Decoder*, {tail}*) "
                            "declared under src/")
                    if not re.search(
                            rf"struct\s+{tail}|class\s+{tail}",
                            src_headers) or "EncodeTo" not in src_headers:
                        self.error(
                            rel, line, "wal-parity",
                            f"k{name}: no EncodeTo for {tail} under src/")

            if f"case WalRecordType::k{name}" not in persist_cc:
                self.error(rel, line, "wal-parity",
                           f"k{name} missing from WalRecordTypeToString "
                           "(src/server/persist.cc)")
            if f"WalRecordType::k{name}" not in golden:
                self.error(rel, line, "wal-parity",
                           f"k{name} has no golden image in "
                           "tests/persist_golden_test.cc")
            if not re.search(rf"\b{name}\s*\(wal\s+record\s+{num}\)",
                             protocol):
                self.error(rel, line, "wal-parity",
                           f"k{name}: PROTOCOL.md lacks a "
                           f"\"{name} (wal record {num})\" entry")

        # Reverse direction: stale golden images pass vacuously.
        declared = {name for name, _ in constants}
        for src_rel, text in (("tests/persist_golden_test.cc", golden),):
            for rm in re.finditer(r"WalRecordType::k(\w+)", text):
                if rm.group(1) not in declared:
                    line = text[:rm.start()].count("\n") + 1
                    self.error(src_rel, line, "wal-parity",
                               f"references WalRecordType::k{rm.group(1)}, "
                               "which is not declared in persist.h")

    # -- clock / rng hygiene -------------------------------------------------

    def check_clock_hygiene(self) -> None:
        for rel in self.source_files():
            if rel in CLOCK_ALLOWLIST:
                continue
            text = self.read(rel)
            if text is None:
                continue
            lines = text.splitlines()
            for idx, raw in enumerate(lines):
                code = self.strip_code(raw)
                for pattern, what in CLOCK_PATTERNS:
                    if pattern.search(code) and not self.suppressed(
                            lines, idx, "clock"):
                        self.error(
                            rel, idx + 1, "clock",
                            f"{what} outside src/net/tcp.cc & "
                            "src/common/clock.h — use common/clock.h "
                            "(SimTime) / common/rng.h (Rng) so schedules "
                            "stay deterministic")

    # -- naked new -----------------------------------------------------------

    def check_naked_new(self) -> None:
        for rel in self.source_files():
            if not rel.startswith("src" + os.sep):
                continue
            text = self.read(rel)
            if text is None:
                continue
            lines = text.splitlines()
            for idx, raw in enumerate(lines):
                code = self.strip_code(raw)
                if NAKED_NEW.search(code) and not self.suppressed(
                        lines, idx, "naked-new"):
                    self.error(rel, idx + 1, "naked-new",
                               "naked `new` — use std::make_unique (or add "
                               "a webdis-lint: allow(naked-new) comment "
                               "explaining the ownership transfer)")

    # -- endpoint confinement --------------------------------------------------

    def check_confinement(self) -> None:
        for rel, cls in CONFINEMENT_CLASSES.items():
            text = self.read(rel)
            if text is None:
                continue  # synthetic trees need not carry every class
            m = re.search(
                rf"class\s+{cls}\b.*?\{{(?P<body>.*?)^\}};",
                text, re.DOTALL | re.MULTILINE)
            if m is None:
                self.error(rel, 1, "confinement",
                           f"class {cls} not found — cannot audit fields")
                continue
            body_start_line = text[:m.start("body")].count("\n") + 1
            allow = CONFINEMENT_ALLOWLIST.get(cls, set())
            lines = text.splitlines()

            declared: dict[str, int] = {}
            guarded: set[str] = set()
            for off, raw in enumerate(m.group("body").splitlines()):
                code = self.strip_code(raw)
                gm = GUARDED_FIELD.search(code)
                if gm is not None:
                    guarded.add(gm.group(1))
                    declared.setdefault(gm.group(1), body_start_line + off)
                    continue
                fm = FIELD_DECL.search(code)
                if fm is not None:
                    declared.setdefault(fm.group(1), body_start_line + off)

            for name, line in sorted(declared.items()):
                if name in guarded or name in allow:
                    continue
                if self.suppressed(lines, line - 1, "confinement"):
                    continue
                self.error(
                    rel, line, "confinement",
                    f"{cls}::{name} is neither WEBDIS_GUARDED_BY a mutex "
                    "nor in the per-endpoint-confined allowlist "
                    "(tools/webdis_lint.py CONFINEMENT_ALLOWLIST) — the "
                    "parallel stepper runs endpoints concurrently; audit "
                    "who touches this field and record the decision")
            for name in sorted(allow - set(declared)):
                self.error(
                    rel, 1, "confinement",
                    f"allowlist entry {cls}::{name} matches no declared "
                    "field — remove it so the audit record stays accurate")

    # -- lock ordering ---------------------------------------------------------

    def check_lock_order(self) -> None:
        declared: dict[str, tuple[str, int]] = {}
        # Directed edges, (outer, inner) -> first site seen.
        annotated: dict[tuple[str, str], tuple[str, int]] = {}
        nested: dict[tuple[str, str], tuple[str, int]] = {}
        missing: list[tuple[str, str, str, int]] = []

        for rel in self.source_files():
            if not rel.startswith("src" + os.sep):
                continue
            text = self.read(rel)
            if text is None:
                continue
            lines = text.splitlines()

            for idx, raw in enumerate(lines):
                code = self.strip_code(raw)
                for dm in MUTEX_DECL.finditer(code):
                    name = dm.group("name")
                    declared.setdefault(name, (rel, idx + 1))
                    after = dm.group("after") or ""
                    for succ in re.split(r"[,\s]+", after.strip()):
                        if succ:
                            annotated.setdefault((name, succ), (rel, idx + 1))

            # Nesting scan: a MutexLock declared at brace depth d stays held
            # until depth drops below d; any lock taken meanwhile nests
            # inside it. Braces and lock statements on one line are replayed
            # in textual order so `{ MutexLock a(&x); { MutexLock b(&y); } }`
            # parses the same regardless of line breaks.
            depth = 0
            held: list[tuple[str, int]] = []  # (mutex, depth at acquisition)
            for idx, raw in enumerate(lines):
                code = self.strip_code(raw)
                events: list[tuple[int, str, str | None]] = []
                for lm in MUTEX_LOCK.finditer(code):
                    target = re.split(r"->|\.", lm.group("target"))[-1]
                    events.append((lm.start(), "lock", target))
                for pos, ch in enumerate(code):
                    if ch == "{":
                        events.append((pos, "open", None))
                    elif ch == "}":
                        events.append((pos, "close", None))
                events.sort(key=lambda e: e[0])
                for _, kind, name in events:
                    if kind == "open":
                        depth += 1
                    elif kind == "close":
                        depth -= 1
                        while held and held[-1][1] > depth:
                            held.pop()
                    else:
                        assert name is not None
                        for outer, _ in held:
                            if outer == name:
                                continue
                            pair = (outer, name)
                            nested.setdefault(pair, (rel, idx + 1))
                            if pair not in annotated and not self.suppressed(
                                    lines, idx, "lock-order"):
                                missing.append((outer, name, rel, idx + 1))
                        held.append((name, depth))

        for outer, inner, rel, line in missing:
            self.error(
                rel, line, "lock-order",
                f"{inner} acquired while {outer} is held, but {outer}'s "
                f"declaration carries no WEBDIS_ACQUIRED_BEFORE({inner}) "
                "annotation — record the ordering on the outer mutex's "
                "declaration (src/common/thread_annotations.h)")

        for (a, b), (rel, line) in sorted(annotated.items()):
            if b not in declared:
                self.error(
                    rel, line, "lock-order",
                    f"WEBDIS_ACQUIRED_BEFORE on {a} names {b}, but no "
                    f"`Mutex {b}` is declared under src/ — stale annotation; "
                    "update or remove it")

        # Cycle detection over the union graph (annotated + observed
        # nestings). An allow() on a nesting site silences the
        # missing-annotation error but never removes the edge: a cycle is a
        # deadlock whether or not each individual nesting was blessed.
        graph: dict[str, set[str]] = {}
        edge_site: dict[tuple[str, str], tuple[str, int]] = {}
        for pair, site in list(annotated.items()) + list(nested.items()):
            graph.setdefault(pair[0], set()).add(pair[1])
            edge_site.setdefault(pair, site)

        state: dict[str, int] = {}  # 1 = on the DFS path, 2 = finished

        def visit(node: str, path: list[str]) -> list[str] | None:
            state[node] = 1
            path.append(node)
            for succ in sorted(graph.get(node, ())):
                if state.get(succ) == 1:
                    return path[path.index(succ):] + [succ]
                if state.get(succ, 0) == 0:
                    cycle = visit(succ, path)
                    if cycle is not None:
                        return cycle
            path.pop()
            state[node] = 2
            return None

        for node in sorted(graph):
            if state.get(node, 0) == 0:
                cycle = visit(node, [])
                if cycle is not None:
                    rel, line = edge_site.get(
                        (cycle[0], cycle[1]), ("src", 1))
                    self.error(
                        rel, line, "lock-order",
                        "acquisition-order cycle: " + " -> ".join(cycle)
                        + " — a latent deadlock; break the cycle (or fix "
                        "the stale annotation that closes it)")
                    break  # one cycle report is enough to fail the build

    # -- web interned tables ---------------------------------------------------

    def check_web_interned_tables(self) -> None:
        rel = os.path.join("src", "web", "graph.h")
        text = self.read(rel)
        if text is None:
            return  # tree has no web layer — nothing to check
        rel = "src/web/graph.h"
        lines = text.splitlines()
        begin = end = None
        for idx, raw in enumerate(lines):
            if INTERNED_TABLES_BEGIN in raw and begin is None:
                begin = idx
            elif INTERNED_TABLES_END in raw and end is None:
                end = idx
        if begin is None or end is None or end <= begin:
            self.error(
                rel, 1, "web-interned-tables",
                "interned-tables markers missing or out of order — the "
                f"document tables must sit between `{INTERNED_TABLES_BEGIN}` "
                f"and `{INTERNED_TABLES_END}` so their memory representation "
                "stays auditable")
            return
        for idx in range(begin + 1, end):
            code = self.strip_code(lines[idx])
            if RAW_STD_STRING.search(code) and not self.suppressed(
                    lines, idx, "web-interned-tables"):
                self.error(
                    rel, idx + 1, "web-interned-tables",
                    "owning std::string inside the interned document "
                    "tables — store interned ids (uint32_t) or "
                    "std::string_view into the StringInterner arena "
                    "instead; one owning copy per document breaks the "
                    "bytes-per-document budget at 10^5+ documents")

    # -- iteration determinism -------------------------------------------------

    @staticmethod
    def _function_extents(code: str) -> list[tuple[int, int]]:
        """Offsets (open brace, close brace) of function/lambda bodies.

        A '{' opens a body when the preceding text ends with a parameter
        list's ')' (plus optional const/noexcept/etc.), and the identifier
        before the matching '(' is not a control-flow keyword. Constructor
        initializer lists resolve to the last initializer's ')', which still
        classifies the brace as a function body.
        """
        extents: list[tuple[int, int]] = []
        brace_stack: list[tuple[int, bool]] = []
        for pos, ch in enumerate(code):
            if ch == "{":
                before = code[:pos]
                is_func = False
                if FUNC_QUALIFIER_TAIL.search(before):
                    close = before.rfind(")")
                    level = 0
                    open_pos = -1
                    for i in range(close, -1, -1):
                        if before[i] == ")":
                            level += 1
                        elif before[i] == "(":
                            level -= 1
                            if level == 0:
                                open_pos = i
                                break
                    if open_pos >= 0:
                        head = re.search(r"([A-Za-z_]\w*)\s*$",
                                         before[:open_pos])
                        word = head.group(1) if head else None
                        is_func = word not in CONTROL_KEYWORDS
                brace_stack.append((pos, is_func))
            elif ch == "}":
                if brace_stack:
                    start, is_func = brace_stack.pop()
                    if is_func:
                        extents.append((start, pos))
        return extents

    def check_iter_determinism(self) -> None:
        for rel in self.source_files():
            if not rel.startswith("src" + os.sep):
                continue
            text = self.read(rel)
            if text is None:
                continue
            lines = text.splitlines()
            code = "\n".join(self.strip_code(l) for l in lines)

            unordered = {dm.group("name")
                         for dm in UNORDERED_DECL.finditer(code)}
            if not unordered:
                continue

            extents = self._function_extents(code)

            for fm in RANGE_FOR.finditer(code):
                name = re.split(r"->|\.", fm.group("expr"))[-1]
                if name not in unordered:
                    continue
                # Innermost function/lambda body containing the loop: the
                # serialization-marker test looks at exactly the code that
                # surrounds it, not the whole file.
                body = None
                for start, end in extents:
                    if start < fm.start() < end and (
                            body is None or start > body[0]):
                        body = (start, end)
                if body is None:
                    continue
                # Include the signature (back to the previous statement/brace
                # boundary): a function *named* FormatRunStats or taking an
                # Encoder* is serialization-feeding even if the marker never
                # repeats inside the braces.
                sig = max(code.rfind(";", 0, body[0]),
                          code.rfind("}", 0, body[0]),
                          code.rfind("{", 0, body[0])) + 1
                if not SERIAL_MARKER.search(code[sig:body[1] + 1]):
                    continue
                idx = code[:fm.start()].count("\n")
                if self.suppressed(lines, idx, "iter-determinism"):
                    continue
                self.error(
                    rel, idx + 1, "iter-determinism",
                    f"range-for over unordered container `{name}` in a "
                    "function that feeds serialization — hash-table "
                    "iteration order is implementation-defined, so the "
                    "encoded bytes drift across stdlibs and runs; "
                    "materialize into a sorted vector (or use std::map) "
                    "before encoding")


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root",
        default=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        help="repository root to lint (default: this script's repo)")
    parser.add_argument(
        "--rules",
        default="wire-parity,wal-parity,clock,naked-new,confinement,"
                "lock-order,iter-determinism,web-interned-tables",
        help="comma-separated subset of rules to run")
    args = parser.parse_args(argv)

    if not os.path.isdir(args.root):
        print(f"webdis-lint: no such root: {args.root}", file=sys.stderr)
        return 2

    linter = Linter(args.root)
    rules = set(args.rules.split(","))
    if "wire-parity" in rules:
        linter.check_wire_parity()
    if "wal-parity" in rules:
        linter.check_wal_parity()
    if "clock" in rules:
        linter.check_clock_hygiene()
    if "naked-new" in rules:
        linter.check_naked_new()
    if "confinement" in rules:
        linter.check_confinement()
    if "lock-order" in rules:
        linter.check_lock_order()
    if "iter-determinism" in rules:
        linter.check_iter_determinism()
    if "web-interned-tables" in rules:
        linter.check_web_interned_tables()

    for err in linter.errors:
        print(err)
    if linter.errors:
        print(f"webdis-lint: {len(linter.errors)} violation(s)",
              file=sys.stderr)
        return 1
    print("webdis-lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
