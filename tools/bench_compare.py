#!/usr/bin/env python3
"""bench_compare: gate CI on wall-clock regressions in bench JSON output.

The parallel/multiquery harnesses (bench/p1_parallel, bench/s2_multiquery)
write one JSON object per line with the fixed schema

    {"workload": str, "workers": int, "wall_ms": float,
     "virtual_ms": float, "messages": int, "bytes": int}

to BENCH_PARALLEL.json / BENCH_MULTIQUERY.json at the repo root. This tool
compares a freshly produced file against a stored baseline and exits 1 when
any (workload, workers) row's wall_ms regressed by more than the threshold
(default 15%). A missing baseline is not an error — first runs pass and the
produced file becomes the next baseline.

virtual_ms / messages / bytes are *determinism* measures: they must match the
baseline exactly for the same code, so a mismatch is printed as a warning
(code changes legitimately move them; wall-clock is the only gate).

A second gate runs within CURRENT alone: when the multiquery bench emits both
s2_multiquery_q16 and s2_multiquery_shared_q16 rows, cross-query sharing must
keep shared message traffic at or below half the unshared count (the
sublinearity claim of the result cache + batch envelopes). A violation exits 1
and prints the offending metric deltas, not a bare failure.

Usage: bench_compare.py BASELINE CURRENT [--threshold 0.15]
Exit: 0 ok (or no baseline), 1 regression, 2 usage/parse error.
"""

from __future__ import annotations

import argparse
import json
import os
import sys


def load(path: str) -> dict[tuple[str, int], dict]:
    rows: dict[tuple[str, int], dict] = {}
    with open(path, encoding="utf-8") as f:
        for line_no, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError as e:
                raise ValueError(f"{path}:{line_no}: bad JSON: {e}") from e
            for field in ("workload", "workers", "wall_ms"):
                if field not in row:
                    raise ValueError(
                        f"{path}:{line_no}: bench row is missing metric "
                        f"'{field}' (row: {line})")
            # Validate metric types up front so a malformed row fails with
            # the metric's name, not a TypeError deep in the comparison.
            for field in ("wall_ms", "virtual_ms", "messages", "bytes",
                          "cache_hit_rate"):
                if field in row and (isinstance(row[field], bool)
                                     or not isinstance(row[field],
                                                       (int, float))):
                    raise ValueError(
                        f"{path}:{line_no}: metric '{field}' is "
                        f"{row[field]!r}, expected a number")
            try:
                workers = int(row["workers"])
            except (TypeError, ValueError):
                raise ValueError(
                    f"{path}:{line_no}: metric 'workers' is "
                    f"{row['workers']!r}, expected an integer") from None
            rows[(row["workload"], workers)] = row
    return rows


SHARING_GATE_Q = 16
SHARING_GATE_RATIO = 0.5


def check_sharing(current: dict[tuple[str, int], dict]) -> list[str]:
    """Sublinearity gate: shared q16 traffic must be <= half of unshared.

    Returns a list of human-readable violations (empty when the gate passes
    or the multiquery rows are absent). Each violation names the metric and
    its delta so a failing CI log is actionable on its own.
    """
    plain = current.get((f"s2_multiquery_q{SHARING_GATE_Q}", 0))
    shared = current.get((f"s2_multiquery_shared_q{SHARING_GATE_Q}", 0))
    if plain is None or shared is None:
        return []
    violations: list[str] = []
    for field in ("messages", "bytes"):
        missing = [row["workload"] for row in (plain, shared)
                   if field not in row]
        if missing:
            # A silently absent metric would pass the gate vacuously; name
            # the metric and the row so the failing log is actionable.
            violations.append(
                f"row(s) {', '.join(missing)} missing metric '{field}' — "
                "cannot evaluate the sharing gate")
            continue
        base, cur = plain[field], shared[field]
        limit = base * SHARING_GATE_RATIO
        ratio = cur / base if base else float("inf")
        verdict = "VIOLATION" if field == "messages" and cur > limit else "ok"
        print(f"bench_compare: sharing q{SHARING_GATE_Q}: {field} "
              f"unshared {base} -> shared {cur} "
              f"({ratio:.2f}x, gate {SHARING_GATE_RATIO:.2f}x on messages) "
              f"{verdict}")
        if verdict == "VIOLATION":
            violations.append(
                f"shared {field} {cur} exceeds {limit:.0f} "
                f"({SHARING_GATE_RATIO:.2f} x unshared {base}; "
                f"delta +{cur - limit:.0f})")
    if "cache_hit_rate" in shared:
        print(f"bench_compare: sharing q{SHARING_GATE_Q}: cache_hit_rate "
              f"{shared['cache_hit_rate']:.3f}")
    return violations


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="stored baseline JSON-lines file")
    parser.add_argument("current", help="freshly produced JSON-lines file")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="allowed fractional wall_ms growth (default .15)")
    args = parser.parse_args()

    try:
        current = load(args.current)
    except (OSError, ValueError) as e:
        print(f"bench_compare: {e}", file=sys.stderr)
        return 2
    sharing_violations = check_sharing(current)
    for violation in sharing_violations:
        print(f"bench_compare: sharing gate: {violation}", file=sys.stderr)

    if not os.path.exists(args.baseline):
        print(f"bench_compare: no baseline at {args.baseline}; passing"
              f"{' (sharing gate still enforced)' if sharing_violations else ''}")
        return 1 if sharing_violations else 0
    try:
        baseline = load(args.baseline)
    except (OSError, ValueError) as e:
        print(f"bench_compare: {e}", file=sys.stderr)
        return 2

    regressions = []
    for key, base_row in sorted(baseline.items()):
        cur_row = current.get(key)
        name = f"{key[0]} (workers={key[1]})"
        if cur_row is None:
            print(f"bench_compare: note: {name} missing from current run")
            continue
        base_wall, cur_wall = base_row["wall_ms"], cur_row["wall_ms"]
        limit = base_wall * (1.0 + args.threshold)
        verdict = "REGRESSION" if cur_wall > limit else "ok"
        print(f"bench_compare: {name}: wall {base_wall:.3f} -> "
              f"{cur_wall:.3f} ms (limit {limit:.3f}) {verdict}")
        if cur_wall > limit:
            regressions.append(name)
        for field in ("virtual_ms", "messages", "bytes"):
            if field in base_row and field in cur_row \
                    and base_row[field] != cur_row[field]:
                print(f"bench_compare: warning: {name}: {field} changed "
                      f"{base_row[field]} -> {cur_row[field]}")
    for key in sorted(set(current) - set(baseline)):
        print(f"bench_compare: note: new row {key[0]} (workers={key[1]})")

    if regressions:
        print(f"bench_compare: {len(regressions)} wall-clock regression(s) "
              f"beyond {args.threshold:.0%}", file=sys.stderr)
        return 1
    if sharing_violations:
        print(f"bench_compare: {len(sharing_violations)} sharing gate "
              f"violation(s)", file=sys.stderr)
        return 1
    print("bench_compare: within threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
