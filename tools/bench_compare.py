#!/usr/bin/env python3
"""bench_compare: gate CI on wall-clock regressions in bench JSON output.

The parallel/multiquery harnesses (bench/p1_parallel, bench/s2_multiquery)
write one JSON object per line with the fixed schema

    {"workload": str, "workers": int, "wall_ms": float,
     "virtual_ms": float, "messages": int, "bytes": int}

to BENCH_PARALLEL.json / BENCH_MULTIQUERY.json at the repo root. This tool
compares a freshly produced file against a stored baseline and exits 1 when
any (workload, workers) row's wall_ms regressed by more than the threshold
(default 15%). A missing baseline is not an error — first runs pass and the
produced file becomes the next baseline.

virtual_ms / messages / bytes are *determinism* measures: they must match the
baseline exactly for the same code, so a mismatch is printed as a warning
(code changes legitimately move them; wall-clock is the only gate).

Usage: bench_compare.py BASELINE CURRENT [--threshold 0.15]
Exit: 0 ok (or no baseline), 1 regression, 2 usage/parse error.
"""

from __future__ import annotations

import argparse
import json
import os
import sys


def load(path: str) -> dict[tuple[str, int], dict]:
    rows: dict[tuple[str, int], dict] = {}
    with open(path, encoding="utf-8") as f:
        for line_no, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError as e:
                raise ValueError(f"{path}:{line_no}: bad JSON: {e}") from e
            for field in ("workload", "workers", "wall_ms"):
                if field not in row:
                    raise ValueError(f"{path}:{line_no}: missing '{field}'")
            rows[(row["workload"], int(row["workers"]))] = row
    return rows


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="stored baseline JSON-lines file")
    parser.add_argument("current", help="freshly produced JSON-lines file")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="allowed fractional wall_ms growth (default .15)")
    args = parser.parse_args()

    if not os.path.exists(args.baseline):
        print(f"bench_compare: no baseline at {args.baseline}; passing")
        return 0
    try:
        baseline = load(args.baseline)
        current = load(args.current)
    except (OSError, ValueError) as e:
        print(f"bench_compare: {e}", file=sys.stderr)
        return 2

    regressions = []
    for key, base_row in sorted(baseline.items()):
        cur_row = current.get(key)
        name = f"{key[0]} (workers={key[1]})"
        if cur_row is None:
            print(f"bench_compare: note: {name} missing from current run")
            continue
        base_wall, cur_wall = base_row["wall_ms"], cur_row["wall_ms"]
        limit = base_wall * (1.0 + args.threshold)
        verdict = "REGRESSION" if cur_wall > limit else "ok"
        print(f"bench_compare: {name}: wall {base_wall:.3f} -> "
              f"{cur_wall:.3f} ms (limit {limit:.3f}) {verdict}")
        if cur_wall > limit:
            regressions.append(name)
        for field in ("virtual_ms", "messages", "bytes"):
            if field in base_row and field in cur_row \
                    and base_row[field] != cur_row[field]:
                print(f"bench_compare: warning: {name}: {field} changed "
                      f"{base_row[field]} -> {cur_row[field]}")
    for key in sorted(set(current) - set(baseline)):
        print(f"bench_compare: note: new row {key[0]} (workers={key[1]})")

    if regressions:
        print(f"bench_compare: {len(regressions)} wall-clock regression(s) "
              f"beyond {args.threshold:.0%}", file=sys.stderr)
        return 1
    print("bench_compare: within threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
