#!/usr/bin/env python3
"""bench_compare: gate CI on wall-clock regressions in bench JSON output.

The parallel/multiquery harnesses (bench/p1_parallel, bench/s2_multiquery)
write one JSON object per line with the fixed schema

    {"workload": str, "workers": int, "wall_ms": float,
     "virtual_ms": float, "messages": int, "bytes": int}

to BENCH_PARALLEL.json / BENCH_MULTIQUERY.json at the repo root. This tool
compares a freshly produced file against a stored baseline and exits 1 when
any (workload, workers) row's wall_ms regressed by more than the threshold
(default 15%). A missing baseline is not an error — first runs pass and the
produced file becomes the next baseline.

virtual_ms / messages / bytes are *determinism* measures: they must match the
baseline exactly for the same code, so a mismatch is printed as a warning
(code changes legitimately move them; wall-clock is the only gate).

Three further gates run within CURRENT alone (no baseline needed):

  sharing      when the multiquery bench emits both s2_multiquery_q16 and
               s2_multiquery_shared_q16 rows, cross-query sharing must keep
               shared message traffic at or below half the unshared count
               (the sublinearity claim of the result cache + batch
               envelopes).

  speedup      when the parallel bench emits p1_parallel rows for workers=1
               and workers=4 and the recording machine had >= 4 cores (the
               rows carry a "cores" field), the 4-worker wall clock must be
               at most half the 1-worker wall clock — parallel execution
               has to actually pay. Skipped (with a note) on narrower
               machines, where there is nothing to measure.

  memory       any row carrying a bytes_per_document field (the p1 bench's
               p1_web_memory row describes its 10^5-document lazy web) must
               stay at or below the per-document ceiling; the lazy
               arena/interner representation must not regress into
               megabytes-per-web territory.

Each violation exits 1 and prints the offending metric deltas, not a bare
failure.

Usage: bench_compare.py BASELINE CURRENT [--threshold 0.15]
Exit: 0 ok (or no baseline), 1 regression, 2 usage/parse error.
"""

from __future__ import annotations

import argparse
import json
import os
import sys


def load(path: str) -> dict[tuple[str, int], dict]:
    rows: dict[tuple[str, int], dict] = {}
    with open(path, encoding="utf-8") as f:
        for line_no, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError as e:
                raise ValueError(f"{path}:{line_no}: bad JSON: {e}") from e
            for field in ("workload", "workers", "wall_ms"):
                if field not in row:
                    raise ValueError(
                        f"{path}:{line_no}: bench row is missing metric "
                        f"'{field}' (row: {line})")
            # Validate metric types up front so a malformed row fails with
            # the metric's name, not a TypeError deep in the comparison.
            for field in ("wall_ms", "virtual_ms", "messages", "bytes",
                          "cache_hit_rate", "cores", "bytes_per_document",
                          "peak_rss_bytes", "documents", "materialized"):
                if field in row and (isinstance(row[field], bool)
                                     or not isinstance(row[field],
                                                       (int, float))):
                    raise ValueError(
                        f"{path}:{line_no}: metric '{field}' is "
                        f"{row[field]!r}, expected a number")
            try:
                workers = int(row["workers"])
            except (TypeError, ValueError):
                raise ValueError(
                    f"{path}:{line_no}: metric 'workers' is "
                    f"{row['workers']!r}, expected an integer") from None
            rows[(row["workload"], workers)] = row
    return rows


SHARING_GATE_Q = 16
SHARING_GATE_RATIO = 0.5


def check_sharing(current: dict[tuple[str, int], dict]) -> list[str]:
    """Sublinearity gate: shared q16 traffic must be <= half of unshared.

    Returns a list of human-readable violations (empty when the gate passes
    or the multiquery rows are absent). Each violation names the metric and
    its delta so a failing CI log is actionable on its own.
    """
    plain = current.get((f"s2_multiquery_q{SHARING_GATE_Q}", 0))
    shared = current.get((f"s2_multiquery_shared_q{SHARING_GATE_Q}", 0))
    if plain is None or shared is None:
        return []
    violations: list[str] = []
    for field in ("messages", "bytes"):
        missing = [row["workload"] for row in (plain, shared)
                   if field not in row]
        if missing:
            # A silently absent metric would pass the gate vacuously; name
            # the metric and the row so the failing log is actionable.
            violations.append(
                f"row(s) {', '.join(missing)} missing metric '{field}' — "
                "cannot evaluate the sharing gate")
            continue
        base, cur = plain[field], shared[field]
        limit = base * SHARING_GATE_RATIO
        ratio = cur / base if base else float("inf")
        verdict = "VIOLATION" if field == "messages" and cur > limit else "ok"
        print(f"bench_compare: sharing q{SHARING_GATE_Q}: {field} "
              f"unshared {base} -> shared {cur} "
              f"({ratio:.2f}x, gate {SHARING_GATE_RATIO:.2f}x on messages) "
              f"{verdict}")
        if verdict == "VIOLATION":
            violations.append(
                f"shared {field} {cur} exceeds {limit:.0f} "
                f"({SHARING_GATE_RATIO:.2f} x unshared {base}; "
                f"delta +{cur - limit:.0f})")
    if "cache_hit_rate" in shared:
        print(f"bench_compare: sharing q{SHARING_GATE_Q}: cache_hit_rate "
              f"{shared['cache_hit_rate']:.3f}")
    return violations


SPEEDUP_GATE_WORKERS = (1, 4)
SPEEDUP_GATE_RATIO = 0.5  # wall at 4 workers <= 0.5 x wall at 1 worker
SPEEDUP_GATE_MIN_CORES = 4


def check_speedup(current: dict[tuple[str, int], dict]) -> list[str]:
    """Speedup-curve gate: 4 workers must halve the 1-worker wall clock.

    Evaluated within CURRENT alone whenever the p1_parallel rows are
    present; only enforced when the rows were recorded on a machine with at
    least SPEEDUP_GATE_MIN_CORES hardware threads (the rows say so via
    their "cores" field — a 1-core CI runner cannot demonstrate a speedup
    and is skipped with a note, not a vacuous pass).
    """
    lo, hi = SPEEDUP_GATE_WORKERS
    base = current.get(("p1_parallel", lo))
    wide = current.get(("p1_parallel", hi))
    if base is None or wide is None:
        return []
    violations: list[str] = []
    missing = [f"workers={row_workers}" for row_workers, row in
               ((lo, base), (hi, wide)) if "cores" not in row]
    if missing:
        # Without the core count the gate cannot tell "skipped on a narrow
        # machine" from "should have been enforced" — make that loud.
        violations.append(
            f"p1_parallel row(s) {', '.join(missing)} missing metric "
            "'cores' — cannot evaluate the speedup gate")
        return violations
    cores = min(base["cores"], wide["cores"])
    if cores < SPEEDUP_GATE_MIN_CORES:
        print(f"bench_compare: speedup gate skipped: rows recorded on "
              f"{cores} core(s), need >= {SPEEDUP_GATE_MIN_CORES}")
        return violations
    wall_lo, wall_hi = base["wall_ms"], wide["wall_ms"]
    limit = wall_lo * SPEEDUP_GATE_RATIO
    speedup = wall_lo / wall_hi if wall_hi else float("inf")
    verdict = "VIOLATION" if wall_hi > limit else "ok"
    print(f"bench_compare: speedup: wall {wall_lo:.3f} ms at "
          f"workers={lo} -> {wall_hi:.3f} ms at workers={hi} "
          f"({speedup:.2f}x, gate {1 / SPEEDUP_GATE_RATIO:.1f}x on "
          f"{cores} cores) {verdict}")
    if verdict == "VIOLATION":
        violations.append(
            f"wall_ms {wall_hi:.3f} at workers={hi} exceeds "
            f"{limit:.3f} ({SPEEDUP_GATE_RATIO:.2f} x workers={lo} wall "
            f"{wall_lo:.3f}; delta +{wall_hi - limit:.3f} ms)")
    return violations


MEMORY_GATE_BYTES_PER_DOC = 1024


def check_memory(current: dict[tuple[str, int], dict]) -> list[str]:
    """Memory gate: lazy-web rows must stay under the per-document ceiling.

    Applies to every row that carries a bytes_per_document field (the p1
    bench emits one p1_web_memory row for its 10^5-document web). A
    p1_web_memory row *without* the field is itself a violation — the gate
    must not pass vacuously because the bench stopped recording the metric.
    """
    violations: list[str] = []
    for (workload, workers), row in sorted(current.items()):
        name = f"{workload} (workers={workers})"
        if "bytes_per_document" not in row:
            if workload == "p1_web_memory":
                violations.append(
                    f"row {name} missing metric 'bytes_per_document' — "
                    "cannot evaluate the memory gate")
            continue
        bpd = row["bytes_per_document"]
        verdict = ("VIOLATION" if bpd > MEMORY_GATE_BYTES_PER_DOC else "ok")
        docs = row.get("documents", "?")
        print(f"bench_compare: memory: {name}: {bpd} bytes/document "
              f"({docs} documents, gate {MEMORY_GATE_BYTES_PER_DOC}) "
              f"{verdict}")
        if verdict == "VIOLATION":
            violations.append(
                f"{name}: bytes_per_document {bpd} exceeds "
                f"{MEMORY_GATE_BYTES_PER_DOC} "
                f"(delta +{bpd - MEMORY_GATE_BYTES_PER_DOC})")
    return violations


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="stored baseline JSON-lines file")
    parser.add_argument("current", help="freshly produced JSON-lines file")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="allowed fractional wall_ms growth (default .15)")
    args = parser.parse_args()

    try:
        current = load(args.current)
    except (OSError, ValueError) as e:
        print(f"bench_compare: {e}", file=sys.stderr)
        return 2
    gate_violations: list[tuple[str, str]] = []
    for gate, check in (("sharing", check_sharing),
                        ("speedup", check_speedup),
                        ("memory", check_memory)):
        for violation in check(current):
            print(f"bench_compare: {gate} gate: {violation}",
                  file=sys.stderr)
            gate_violations.append((gate, violation))

    if not os.path.exists(args.baseline):
        print(f"bench_compare: no baseline at {args.baseline}; passing"
              f"{' (current-run gates still enforced)' if gate_violations else ''}")
        return 1 if gate_violations else 0
    try:
        baseline = load(args.baseline)
    except (OSError, ValueError) as e:
        print(f"bench_compare: {e}", file=sys.stderr)
        return 2

    regressions = []
    for key, base_row in sorted(baseline.items()):
        cur_row = current.get(key)
        name = f"{key[0]} (workers={key[1]})"
        if cur_row is None:
            print(f"bench_compare: note: {name} missing from current run")
            continue
        base_wall, cur_wall = base_row["wall_ms"], cur_row["wall_ms"]
        limit = base_wall * (1.0 + args.threshold)
        verdict = "REGRESSION" if cur_wall > limit else "ok"
        print(f"bench_compare: {name}: wall {base_wall:.3f} -> "
              f"{cur_wall:.3f} ms (limit {limit:.3f}) {verdict}")
        if cur_wall > limit:
            regressions.append(name)
        for field in ("virtual_ms", "messages", "bytes"):
            if field in base_row and field in cur_row \
                    and base_row[field] != cur_row[field]:
                print(f"bench_compare: warning: {name}: {field} changed "
                      f"{base_row[field]} -> {cur_row[field]}")
    for key in sorted(set(current) - set(baseline)):
        print(f"bench_compare: note: new row {key[0]} (workers={key[1]})")

    if regressions:
        print(f"bench_compare: {len(regressions)} wall-clock regression(s) "
              f"beyond {args.threshold:.0%}", file=sys.stderr)
        return 1
    if gate_violations:
        gates = ", ".join(sorted({gate for gate, _ in gate_violations}))
        print(f"bench_compare: {len(gate_violations)} gate violation(s) "
              f"({gates})", file=sys.stderr)
        return 1
    print("bench_compare: within threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
