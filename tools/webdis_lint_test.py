#!/usr/bin/env python3
"""Unit tests for webdis-lint: each invariant must catch a deliberate break.

Builds minimal synthetic repo trees in a temp dir and asserts that the
checker (a) passes a consistent tree, and (b) fails — with the right rule
tag — when exactly one invariant is broken. This is the acceptance proof
that the CI lint job actually gates: a checker that cannot fail is
decoration.
"""

import os
import shutil
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import webdis_lint  # noqa: E402


TRANSPORT_H = """\
enum class MessageType : uint8_t {
  kPing = 1,  // payload: u64 nonce
  kEcho = 2,  // payload: struct query::Echo
  kBusy = 3,  // payload: u64 transfer_seq
};
"""

TRANSPORT_CC = """\
case MessageType::kPing:
case MessageType::kEcho:
case MessageType::kBusy:
"""

QUERY_H = """\
struct Echo {
  void EncodeTo(serialize::Encoder* enc) const;
  static Status DecodeFrom(serialize::Decoder* dec, Echo* out);
};
"""

GOLDEN_CC = """\
TEST(WireGoldenTest, PingFrame) { Use(net::MessageType::kPing); }
TEST(WireGoldenTest, EchoFrame) { Use(net::MessageType::kEcho); }
TEST(WireGoldenTest, BusyFrame) { Use(net::MessageType::kBusy); }
"""

PROTOCOL_MD = """\
## Ping (type 1)
## Echo (type 2)
## Busy (type 3)
"""

PERSIST_H = """\
enum class WalRecordType : uint8_t {
  kCloneAdmitted = 1,  // payload: struct server::WalCloneAdmitted
  kCloneCompleted = 2,  // payload: struct server::WalCloneCompleted
};
struct WalCloneAdmitted {
  void EncodeTo(serialize::Encoder* enc) const;
  static Status DecodeFrom(serialize::Decoder* dec, WalCloneAdmitted* out);
};
struct WalCloneCompleted {
  void EncodeTo(serialize::Encoder* enc) const;
  static Status DecodeFrom(serialize::Decoder* dec, WalCloneCompleted* out);
};
"""

PERSIST_CC = """\
case WalRecordType::kCloneAdmitted:
case WalRecordType::kCloneCompleted:
"""

PERSIST_GOLDEN_CC = """\
TEST(PersistGoldenTest, A) { Use(server::WalRecordType::kCloneAdmitted); }
TEST(PersistGoldenTest, C) { Use(server::WalRecordType::kCloneCompleted); }
"""

PERSIST_PROTOCOL_MD = PROTOCOL_MD + """\
## CloneAdmitted (wal record 1)
## CloneCompleted (wal record 2)
"""


class LintTreeTest(unittest.TestCase):
    def setUp(self):
        self.root = tempfile.mkdtemp(prefix="webdis_lint_test_")
        self.addCleanup(shutil.rmtree, self.root)

    def write(self, rel, content):
        path = os.path.join(self.root, rel)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as f:
            f.write(content)

    def write_consistent_tree(self):
        self.write("src/net/transport.h", TRANSPORT_H)
        self.write("src/net/transport.cc", TRANSPORT_CC)
        self.write("src/query/echo.h", QUERY_H)
        self.write("tests/wire_golden_test.cc", GOLDEN_CC)
        self.write("PROTOCOL.md", PROTOCOL_MD)

    def run_lint(self, rules):
        linter = webdis_lint.Linter(self.root)
        if "wire-parity" in rules:
            linter.check_wire_parity()
        if "wal-parity" in rules:
            linter.check_wal_parity()
        if "clock" in rules:
            linter.check_clock_hygiene()
        if "naked-new" in rules:
            linter.check_naked_new()
        if "confinement" in rules:
            linter.check_confinement()
        if "lock-order" in rules:
            linter.check_lock_order()
        if "iter-determinism" in rules:
            linter.check_iter_determinism()
        if "web-interned-tables" in rules:
            linter.check_web_interned_tables()
        return linter.errors

    # -- wire-parity ---------------------------------------------------------

    def test_consistent_tree_is_clean(self):
        self.write_consistent_tree()
        self.assertEqual(self.run_lint({"wire-parity", "clock", "naked-new"}),
                         [])

    def test_missing_golden_frame_fails(self):
        self.write_consistent_tree()
        self.write("tests/wire_golden_test.cc",
                   "TEST(WireGoldenTest, PingFrame) "
                   "{ Use(net::MessageType::kPing); }\n")
        errors = self.run_lint({"wire-parity"})
        self.assertTrue(any("[wire-parity]" in e and "kEcho" in e
                            and "golden" in e for e in errors), errors)

    def test_missing_tostring_case_fails(self):
        self.write_consistent_tree()
        self.write("src/net/transport.cc", "case MessageType::kPing:\n")
        errors = self.run_lint({"wire-parity"})
        self.assertTrue(any("MessageTypeToString" in e and "kEcho" in e
                            for e in errors), errors)

    def test_missing_decoder_fails(self):
        self.write_consistent_tree()
        self.write("src/query/echo.h",
                   "struct Echo { void EncodeTo(serialize::Encoder*) "
                   "const; };\n")
        errors = self.run_lint({"wire-parity"})
        self.assertTrue(any("DecodeFrom" in e and "kEcho" in e
                            for e in errors), errors)

    def test_missing_payload_annotation_fails(self):
        self.write_consistent_tree()
        self.write("src/net/transport.h",
                   "enum class MessageType : uint8_t {\n"
                   "  kPing = 1,  // payload: u64 nonce\n"
                   "  kEcho = 2,\n"
                   "};\n")
        errors = self.run_lint({"wire-parity"})
        self.assertTrue(any("payload" in e and "kEcho" in e for e in errors),
                        errors)

    def test_missing_protocol_entry_fails(self):
        self.write_consistent_tree()
        self.write("PROTOCOL.md", "## Ping (type 1)\n")
        errors = self.run_lint({"wire-parity"})
        self.assertTrue(any("PROTOCOL.md" in e and "kEcho" in e
                            for e in errors), errors)

    # A status/NACK type like kBusy (or the real kOverloaded) carries a
    # primitive payload: the codec requirement is the golden frame +
    # PROTOCOL.md entry, with no struct En/DecodeTo pair to cross-check.

    def test_status_type_missing_golden_frame_fails(self):
        self.write_consistent_tree()
        self.write("tests/wire_golden_test.cc",
                   "TEST(WireGoldenTest, PingFrame) "
                   "{ Use(net::MessageType::kPing); }\n"
                   "TEST(WireGoldenTest, EchoFrame) "
                   "{ Use(net::MessageType::kEcho); }\n")
        errors = self.run_lint({"wire-parity"})
        self.assertTrue(any("[wire-parity]" in e and "kBusy" in e
                            and "golden" in e for e in errors), errors)

    def test_status_type_missing_protocol_entry_fails(self):
        self.write_consistent_tree()
        self.write("PROTOCOL.md", "## Ping (type 1)\n## Echo (type 2)\n")
        errors = self.run_lint({"wire-parity"})
        self.assertTrue(any("PROTOCOL.md" in e and "kBusy" in e
                            for e in errors), errors)

    # A *terminal* status NACK (the real kSiteRetired, PROTOCOL.md §10.2)
    # is wire-wise just another primitive-payload status type: the parity
    # rule must demand its annotation, ToString case, golden frame and
    # PROTOCOL entry exactly like kBusy/kOverloaded — terminality lives in
    # the sender's handling, not the frame, so nothing exempts it.

    def write_terminal_status_tree(self):
        self.write("src/net/transport.h", TRANSPORT_H.replace(
            "};", "  kGone = 4,  // payload: u64 transfer_seq\n};"))
        self.write("src/net/transport.cc",
                   TRANSPORT_CC + "case MessageType::kGone:\n")
        self.write("src/query/echo.h", QUERY_H)
        self.write("tests/wire_golden_test.cc", GOLDEN_CC +
                   "TEST(WireGoldenTest, GoneFrame) "
                   "{ Use(net::MessageType::kGone); }\n")
        self.write("PROTOCOL.md", PROTOCOL_MD + "## Gone (type 4)\n")

    def test_terminal_status_consistent_tree_is_clean(self):
        self.write_terminal_status_tree()
        self.assertEqual(self.run_lint({"wire-parity"}), [])

    def test_terminal_status_missing_golden_frame_fails(self):
        self.write_terminal_status_tree()
        self.write("tests/wire_golden_test.cc", GOLDEN_CC)
        errors = self.run_lint({"wire-parity"})
        self.assertTrue(any("[wire-parity]" in e and "kGone" in e
                            and "golden" in e for e in errors), errors)

    def test_terminal_status_missing_tostring_case_fails(self):
        self.write_terminal_status_tree()
        self.write("src/net/transport.cc", TRANSPORT_CC)
        errors = self.run_lint({"wire-parity"})
        self.assertTrue(any("MessageTypeToString" in e and "kGone" in e
                            for e in errors), errors)

    def test_terminal_status_missing_protocol_entry_fails(self):
        self.write_terminal_status_tree()
        self.write("PROTOCOL.md", PROTOCOL_MD)
        errors = self.run_lint({"wire-parity"})
        self.assertTrue(any("PROTOCOL.md" in e and "kGone" in e
                            for e in errors), errors)

    def test_terminal_status_missing_annotation_fails(self):
        self.write_terminal_status_tree()
        self.write("src/net/transport.h", TRANSPORT_H.replace(
            "};", "  kGone = 4,\n};"))
        errors = self.run_lint({"wire-parity"})
        self.assertTrue(any("payload" in e and "kGone" in e for e in errors),
                        errors)

    # A batch envelope type (like the real kCloneBatch/kReportBatch) is an
    # ordinary struct-payload message: adding it without its golden frame,
    # decoder, or PROTOCOL entry must fail exactly like any other type.

    def write_batch_tree(self):
        self.write("src/net/transport.h", TRANSPORT_H.replace(
            "};", "  kEchoBatch = 9,  // payload: struct query::EchoBatch\n};"))
        self.write("src/net/transport.cc",
                   TRANSPORT_CC + "case MessageType::kEchoBatch:\n")
        self.write("src/query/echo.h", QUERY_H + """\
struct EchoBatch {
  void EncodeTo(serialize::Encoder* enc) const;
  static Status DecodeFrom(serialize::Decoder* dec, EchoBatch* out);
};
""")
        self.write("tests/wire_golden_test.cc", GOLDEN_CC +
                   "TEST(WireGoldenTest, EchoBatchFrame) "
                   "{ Use(net::MessageType::kEchoBatch); }\n")
        self.write("PROTOCOL.md", PROTOCOL_MD + "## EchoBatch (type 9)\n")

    def test_batch_type_consistent_tree_is_clean(self):
        self.write_batch_tree()
        self.assertEqual(self.run_lint({"wire-parity"}), [])

    def test_batch_type_missing_golden_frame_fails(self):
        self.write_batch_tree()
        self.write("tests/wire_golden_test.cc", GOLDEN_CC)
        errors = self.run_lint({"wire-parity"})
        self.assertTrue(any("[wire-parity]" in e and "kEchoBatch" in e
                            and "golden" in e for e in errors), errors)

    def test_batch_type_missing_decoder_fails(self):
        self.write_batch_tree()
        self.write("src/query/echo.h", QUERY_H)  # EchoBatch codec gone
        errors = self.run_lint({"wire-parity"})
        self.assertTrue(any("DecodeFrom" in e and "kEchoBatch" in e
                            for e in errors), errors)

    def test_batch_type_missing_protocol_entry_fails(self):
        self.write_batch_tree()
        self.write("PROTOCOL.md", PROTOCOL_MD)
        errors = self.run_lint({"wire-parity"})
        self.assertTrue(any("PROTOCOL.md" in e and "kEchoBatch" in e
                            for e in errors), errors)

    def test_stale_golden_reference_fails(self):
        self.write_consistent_tree()
        self.write("tests/wire_golden_test.cc",
                   GOLDEN_CC +
                   "TEST(WireGoldenTest, Gone) "
                   "{ Use(net::MessageType::kRetired); }\n")
        errors = self.run_lint({"wire-parity"})
        self.assertTrue(any("kRetired" in e and "not declared" in e
                            for e in errors), errors)

    # -- wal-parity ----------------------------------------------------------

    def write_persist_tree(self):
        self.write("src/server/persist.h", PERSIST_H)
        self.write("src/server/persist.cc", PERSIST_CC)
        self.write("tests/persist_golden_test.cc", PERSIST_GOLDEN_CC)
        self.write("PROTOCOL.md", PERSIST_PROTOCOL_MD)

    def test_wal_parity_consistent_tree_is_clean(self):
        self.write_consistent_tree()
        self.write_persist_tree()
        self.assertEqual(self.run_lint({"wire-parity", "wal-parity"}), [])

    def test_wal_parity_absent_persist_header_is_skipped(self):
        self.write_consistent_tree()  # no src/server/persist.h at all
        self.assertEqual(self.run_lint({"wal-parity"}), [])

    def test_wal_parity_missing_golden_image_fails(self):
        self.write_consistent_tree()
        self.write_persist_tree()
        self.write("tests/persist_golden_test.cc",
                   "TEST(PersistGoldenTest, A) "
                   "{ Use(server::WalRecordType::kCloneAdmitted); }\n")
        errors = self.run_lint({"wal-parity"})
        self.assertTrue(any("[wal-parity]" in e and "kCloneCompleted" in e
                            and "golden" in e for e in errors), errors)

    def test_wal_parity_missing_tostring_case_fails(self):
        self.write_consistent_tree()
        self.write_persist_tree()
        self.write("src/server/persist.cc",
                   "case WalRecordType::kCloneAdmitted:\n")
        errors = self.run_lint({"wal-parity"})
        self.assertTrue(any("WalRecordTypeToString" in e
                            and "kCloneCompleted" in e for e in errors),
                        errors)

    def test_wal_parity_missing_decoder_fails(self):
        self.write_consistent_tree()
        self.write_persist_tree()
        self.write("src/server/persist.h", PERSIST_H.replace(
            "  static Status DecodeFrom(serialize::Decoder* dec, "
            "WalCloneCompleted* out);\n", ""))
        errors = self.run_lint({"wal-parity"})
        self.assertTrue(any("DecodeFrom" in e and "kCloneCompleted" in e
                            for e in errors), errors)

    def test_wal_parity_missing_payload_annotation_fails(self):
        self.write_consistent_tree()
        self.write_persist_tree()
        self.write("src/server/persist.h", PERSIST_H.replace(
            "kCloneCompleted = 2,  // payload: struct server::WalCloneCompleted",
            "kCloneCompleted = 2,"))
        errors = self.run_lint({"wal-parity"})
        self.assertTrue(any("[wal-parity]" in e and "payload" in e
                            and "kCloneCompleted" in e for e in errors),
                        errors)

    def test_wal_parity_missing_protocol_entry_fails(self):
        self.write_consistent_tree()
        self.write_persist_tree()
        self.write("PROTOCOL.md",
                   PROTOCOL_MD + "## CloneAdmitted (wal record 1)\n")
        errors = self.run_lint({"wal-parity"})
        self.assertTrue(any("PROTOCOL.md" in e and "kCloneCompleted" in e
                            for e in errors), errors)

    def test_wal_parity_stale_golden_reference_fails(self):
        self.write_consistent_tree()
        self.write_persist_tree()
        self.write("tests/persist_golden_test.cc",
                   PERSIST_GOLDEN_CC +
                   "TEST(PersistGoldenTest, Gone) "
                   "{ Use(server::WalRecordType::kRetired); }\n")
        errors = self.run_lint({"wal-parity"})
        self.assertTrue(any("kRetired" in e and "not declared" in e
                            for e in errors), errors)

    # -- clock hygiene -------------------------------------------------------

    def test_steady_clock_outside_allowlist_fails(self):
        self.write_consistent_tree()
        self.write("src/core/engine.cc",
                   "auto t = std::chrono::steady_clock::now();\n")
        errors = self.run_lint({"clock"})
        self.assertTrue(any("[clock]" in e and "engine.cc" in e
                            for e in errors), errors)

    def test_rand_in_bench_fails(self):
        self.write_consistent_tree()
        self.write("bench/b.cc", "int x = rand();\n")
        errors = self.run_lint({"clock"})
        self.assertTrue(any("[clock]" in e and "bench" in e for e in errors),
                        errors)

    def test_clock_in_allowlisted_file_passes(self):
        self.write_consistent_tree()
        self.write("src/net/tcp.cc",
                   "auto t = std::chrono::steady_clock::now();\n")
        self.assertEqual(self.run_lint({"clock"}), [])

    def test_clock_with_allow_comment_passes(self):
        self.write_consistent_tree()
        self.write("src/net/tcp.h",
                   "// webdis-lint: allow(clock) — wall-clock timer store\n"
                   "std::chrono::steady_clock::time_point due;\n")
        self.assertEqual(self.run_lint({"clock"}), [])

    def test_clock_in_comment_or_string_passes(self):
        self.write_consistent_tree()
        self.write("src/core/engine.cc",
                   "// never use std::chrono::steady_clock here\n"
                   'const char* kDoc = "std::chrono::steady_clock";\n')
        self.assertEqual(self.run_lint({"clock"}), [])

    # -- naked new -----------------------------------------------------------

    def test_naked_new_fails(self):
        self.write_consistent_tree()
        self.write("src/core/engine.cc", "auto* p = new Engine();\n")
        errors = self.run_lint({"naked-new"})
        self.assertTrue(any("[naked-new]" in e for e in errors), errors)

    def test_naked_new_with_allow_comment_passes(self):
        self.write_consistent_tree()
        self.write("src/core/engine.cc",
                   "// webdis-lint: allow(naked-new) — private ctor factory\n"
                   "return EnginePtr(new Engine(kind));\n")
        self.assertEqual(self.run_lint({"naked-new"}), [])

    def test_make_unique_passes(self):
        self.write_consistent_tree()
        self.write("src/core/engine.cc",
                   "auto p = std::make_unique<Engine>();\n"
                   "int renewed = renew(foo);\n")
        self.assertEqual(self.run_lint({"naked-new"}), [])

    # -- endpoint confinement ------------------------------------------------

    def write_query_server(self, extra_fields=""):
        self.write("src/server/query_server.h",
                   "class QueryServer {\n"
                   " public:\n"
                   "  void Start();\n"
                   " private:\n"
                   "  std::string host_;\n"
                   "  mutable QueryServerStats stats_;\n"
                   + extra_fields +
                   "};\n")

    def patch_allowlist(self, cls, fields):
        original = webdis_lint.CONFINEMENT_ALLOWLIST[cls]
        webdis_lint.CONFINEMENT_ALLOWLIST[cls] = fields
        self.addCleanup(
            webdis_lint.CONFINEMENT_ALLOWLIST.__setitem__, cls, original)

    def test_confinement_allowlisted_fields_pass(self):
        self.write_consistent_tree()
        self.patch_allowlist("QueryServer", {"host_", "stats_"})
        self.write_query_server()
        self.assertEqual(self.run_lint({"confinement"}), [])

    def test_confinement_new_unannotated_field_fails(self):
        self.write_consistent_tree()
        self.patch_allowlist("QueryServer", {"host_", "stats_"})
        self.write_query_server("  std::map<int, int> rogue_state_;\n")
        errors = self.run_lint({"confinement"})
        self.assertTrue(any("[confinement]" in e and "rogue_state_" in e
                            for e in errors), errors)

    def test_confinement_guarded_field_passes(self):
        self.write_consistent_tree()
        self.patch_allowlist("QueryServer", {"host_", "stats_"})
        self.write_query_server(
            "  uint64_t shared_hits_ WEBDIS_GUARDED_BY(mu_) = 0;\n")
        self.assertEqual(self.run_lint({"confinement"}), [])

    def test_confinement_allow_comment_passes(self):
        self.write_consistent_tree()
        self.patch_allowlist("QueryServer", {"host_", "stats_"})
        self.write_query_server(
            "  // webdis-lint: allow(confinement) — audited separately\n"
            "  std::vector<int> special_case_;\n")
        self.assertEqual(self.run_lint({"confinement"}), [])

    # The cross-query result cache is shared across queries but confined to
    # one endpoint's partition: its fields must still be audited like any
    # other mutable server state.

    CACHE_FIELDS = ("  std::list<CachedResult> result_cache_lru_;\n"
                    "  std::map<std::string, It> result_cache_index_;\n"
                    "  uint64_t result_cache_bytes_ = 0;\n")

    def test_confinement_unlisted_cache_fields_fail(self):
        self.write_consistent_tree()
        self.patch_allowlist("QueryServer", {"host_", "stats_"})
        self.write_query_server(self.CACHE_FIELDS)
        errors = self.run_lint({"confinement"})
        for field in ("result_cache_lru_", "result_cache_index_",
                      "result_cache_bytes_"):
            self.assertTrue(any("[confinement]" in e and field in e
                                for e in errors), (field, errors))

    def test_confinement_allowlisted_cache_fields_pass(self):
        self.write_consistent_tree()
        self.patch_allowlist("QueryServer",
                             {"host_", "stats_", "result_cache_lru_",
                              "result_cache_index_", "result_cache_bytes_"})
        self.write_query_server(self.CACHE_FIELDS)
        self.assertEqual(self.run_lint({"confinement"}), [])

    def test_confinement_stale_allowlist_entry_fails(self):
        self.write_consistent_tree()
        self.patch_allowlist("QueryServer",
                             {"host_", "stats_", "deleted_long_ago_"})
        self.write_query_server()
        errors = self.run_lint({"confinement"})
        self.assertTrue(any("[confinement]" in e and "deleted_long_ago_" in e
                            for e in errors), errors)

    def test_confinement_missing_class_fails(self):
        self.write_consistent_tree()
        self.write("src/server/query_server.h", "struct SomethingElse {};\n")
        errors = self.run_lint({"confinement"})
        self.assertTrue(any("[confinement]" in e and "QueryServer" in e
                            for e in errors), errors)

    def test_confinement_absent_file_skipped(self):
        self.write_consistent_tree()  # no query_server.h at all
        self.assertEqual(self.run_lint({"confinement"}), [])

    # -- lock ordering -------------------------------------------------------

    def test_lock_order_nested_without_annotation_fails(self):
        self.write_consistent_tree()
        self.write("src/server/cache.cc",
                   "Mutex mu_;\n"
                   "Mutex log_mu_;\n"
                   "void Flush() {\n"
                   "  MutexLock lock(&mu_);\n"
                   "  MutexLock inner(&log_mu_);\n"
                   "}\n")
        errors = self.run_lint({"lock-order"})
        self.assertTrue(any("[lock-order]" in e and "log_mu_" in e
                            and "WEBDIS_ACQUIRED_BEFORE" in e
                            for e in errors), errors)

    def test_lock_order_annotation_satisfies(self):
        self.write_consistent_tree()
        self.write("src/server/cache.cc",
                   "Mutex mu_ WEBDIS_ACQUIRED_BEFORE(log_mu_);\n"
                   "Mutex log_mu_;\n"
                   "void Flush() {\n"
                   "  MutexLock lock(&mu_);\n"
                   "  {\n"
                   "    MutexLock inner(&log_mu_);\n"
                   "  }\n"
                   "}\n")
        self.assertEqual(self.run_lint({"lock-order"}), [])

    def test_lock_order_annotation_cycle_fails(self):
        self.write_consistent_tree()
        self.write("src/server/cache.cc",
                   "Mutex a_ WEBDIS_ACQUIRED_BEFORE(b_);\n"
                   "Mutex b_ WEBDIS_ACQUIRED_BEFORE(a_);\n")
        errors = self.run_lint({"lock-order"})
        self.assertTrue(any("[lock-order]" in e and "cycle" in e
                            for e in errors), errors)

    def test_lock_order_nesting_edge_closes_cycle(self):
        # The annotated order says a_ before b_; a suppressed inversion in
        # another function still contributes its edge, so the union graph
        # must report the deadlock even though each site looks blessed.
        self.write_consistent_tree()
        self.write("src/server/cache.cc",
                   "Mutex a_ WEBDIS_ACQUIRED_BEFORE(b_);\n"
                   "Mutex b_;\n"
                   "void F() {\n"
                   "  MutexLock l1(&a_);\n"
                   "  MutexLock l2(&b_);\n"
                   "}\n"
                   "void G() {\n"
                   "  MutexLock l1(&b_);\n"
                   "  // webdis-lint: allow(lock-order) — test inversion\n"
                   "  MutexLock l2(&a_);\n"
                   "}\n")
        errors = self.run_lint({"lock-order"})
        self.assertTrue(any("cycle" in e and "a_" in e and "b_" in e
                            for e in errors), errors)
        self.assertFalse(any("WEBDIS_ACQUIRED_BEFORE(a_)" in e
                             for e in errors), errors)

    def test_lock_order_suppression_honored(self):
        self.write_consistent_tree()
        self.write("src/server/cache.cc",
                   "Mutex mu_;\n"
                   "Mutex log_mu_;\n"
                   "void Flush() {\n"
                   "  MutexLock lock(&mu_);\n"
                   "  // webdis-lint: allow(lock-order) — audited by hand\n"
                   "  MutexLock inner(&log_mu_);\n"
                   "}\n")
        self.assertEqual(self.run_lint({"lock-order"}), [])

    def test_lock_order_stale_annotation_fails(self):
        self.write_consistent_tree()
        self.write("src/server/cache.cc",
                   "Mutex mu_ WEBDIS_ACQUIRED_BEFORE(retired_mu_);\n")
        errors = self.run_lint({"lock-order"})
        self.assertTrue(any("[lock-order]" in e and "retired_mu_" in e
                            and "stale" in e for e in errors), errors)

    def test_lock_order_sequential_locks_pass(self):
        self.write_consistent_tree()
        self.write("src/server/cache.cc",
                   "Mutex mu_;\n"
                   "Mutex log_mu_;\n"
                   "void F() {\n"
                   "  { MutexLock l(&mu_); }\n"
                   "  { MutexLock l(&log_mu_); }\n"
                   "}\n")
        self.assertEqual(self.run_lint({"lock-order"}), [])

    def test_lock_order_chain_requires_every_pair(self):
        # a_ -> b_ and b_ -> c_ are annotated, but holding all three also
        # nests a_ over c_: transitive closure is not assumed, the direct
        # pair must be recorded too.
        self.write_consistent_tree()
        self.write("src/server/cache.cc",
                   "Mutex a_ WEBDIS_ACQUIRED_BEFORE(b_);\n"
                   "Mutex b_ WEBDIS_ACQUIRED_BEFORE(c_);\n"
                   "Mutex c_;\n"
                   "void F() {\n"
                   "  MutexLock l1(&a_);\n"
                   "  MutexLock l2(&b_);\n"
                   "  MutexLock l3(&c_);\n"
                   "}\n")
        errors = self.run_lint({"lock-order"})
        self.assertTrue(any("c_ acquired while a_ is held" in e
                            for e in errors), errors)

    # -- iteration determinism -----------------------------------------------

    def test_iter_determinism_unordered_in_encode_fails(self):
        self.write_consistent_tree()
        self.write("src/query/stats.cc",
                   "std::unordered_map<std::string, int> counts_;\n"
                   "void EncodeTo(serialize::Encoder* enc) {\n"
                   "  for (const auto& kv : counts_) {\n"
                   "    enc->PutU64(kv.second);\n"
                   "  }\n"
                   "}\n")
        errors = self.run_lint({"iter-determinism"})
        self.assertTrue(any("[iter-determinism]" in e and "counts_" in e
                            for e in errors), errors)

    def test_iter_determinism_sorted_materialization_passes(self):
        self.write_consistent_tree()
        self.write("src/query/stats.cc",
                   "std::unordered_map<std::string, int> counts_;\n"
                   "void EncodeTo(serialize::Encoder* enc) {\n"
                   "  std::vector<std::pair<std::string, int>> sorted(\n"
                   "      counts_.begin(), counts_.end());\n"
                   "  std::sort(sorted.begin(), sorted.end());\n"
                   "  for (const auto& kv : sorted) {\n"
                   "    enc->PutU64(kv.second);\n"
                   "  }\n"
                   "}\n")
        self.assertEqual(self.run_lint({"iter-determinism"}), [])

    def test_iter_determinism_suppression_honored(self):
        self.write_consistent_tree()
        self.write("src/query/stats.cc",
                   "std::unordered_map<std::string, int> counts_;\n"
                   "void EncodeTo(serialize::Encoder* enc) {\n"
                   "  // webdis-lint: allow(iter-determinism) — order-free sum\n"
                   "  for (const auto& kv : counts_) {\n"
                   "    total += kv.second;\n"
                   "  }\n"
                   "  enc->PutU64(total);\n"
                   "}\n")
        self.assertEqual(self.run_lint({"iter-determinism"}), [])

    def test_iter_determinism_non_serializing_function_passes(self):
        self.write_consistent_tree()
        self.write("src/query/stats.cc",
                   "std::unordered_set<int> seen_;\n"
                   "bool Contains(int x) const {\n"
                   "  for (int v : seen_) {\n"
                   "    if (v == x) return true;\n"
                   "  }\n"
                   "  return false;\n"
                   "}\n")
        self.assertEqual(self.run_lint({"iter-determinism"}), [])

    def test_iter_determinism_ordered_map_passes(self):
        self.write_consistent_tree()
        self.write("src/query/stats.cc",
                   "std::unordered_map<std::string, int> index_;\n"
                   "std::map<std::string, int> counts_;\n"
                   "void EncodeTo(serialize::Encoder* enc) {\n"
                   "  for (const auto& kv : counts_) {\n"
                   "    enc->PutU64(kv.second);\n"
                   "  }\n"
                   "}\n")
        self.assertEqual(self.run_lint({"iter-determinism"}), [])

    def test_iter_determinism_format_run_stats_flagged(self):
        self.write_consistent_tree()
        self.write("src/client/stats.cc",
                   "std::unordered_set<std::string> hosts_;\n"
                   "std::string FormatRunStats() {\n"
                   "  std::string out;\n"
                   "  for (const auto& h : hosts_) {\n"
                   "    out += h;\n"
                   "  }\n"
                   "  return out;\n"
                   "}\n")
        errors = self.run_lint({"iter-determinism"})
        self.assertTrue(any("[iter-determinism]" in e and "hosts_" in e
                            for e in errors), errors)

    def test_iter_determinism_structured_binding_flagged(self):
        self.write_consistent_tree()
        self.write("src/query/stats.cc",
                   "std::unordered_map<std::string, int> counts_;\n"
                   "void EncodeTo(serialize::Encoder* enc) {\n"
                   "  for (const auto& [name, n] : counts_) {\n"
                   "    enc->PutU64(n);\n"
                   "  }\n"
                   "}\n")
        errors = self.run_lint({"iter-determinism"})
        self.assertTrue(any("[iter-determinism]" in e and "counts_" in e
                            for e in errors), errors)

    # -- web interned tables ---------------------------------------------------

    GRAPH_H_INTERNED = """\
class WebGraph {
 private:
  common::StringInterner strings_;
  // webdis-lint: interned-tables-begin
  // Keys are views into the interner arena — std::string would copy.
  std::map<std::string_view, uint32_t> by_key_;
  std::map<std::string_view, std::map<std::string_view, uint32_t>>
      host_index_;
  std::set<uint32_t> retired_hosts_;
  // webdis-lint: interned-tables-end
  std::map<std::pair<std::string, uint64_t>, std::string> history_;
};
"""

    def test_web_interned_tables_clean_tree_passes(self):
        self.write_consistent_tree()
        self.write("src/web/graph.h", self.GRAPH_H_INTERNED)
        self.assertEqual(self.run_lint({"web-interned-tables"}), [])

    def test_web_interned_tables_raw_string_key_fails(self):
        self.write_consistent_tree()
        self.write("src/web/graph.h", self.GRAPH_H_INTERNED.replace(
            "std::map<std::string_view, uint32_t> by_key_;",
            "std::map<std::string, uint32_t> by_key_;"))
        errors = self.run_lint({"web-interned-tables"})
        self.assertTrue(any("[web-interned-tables]" in e
                            and "std::string" in e for e in errors), errors)

    def test_web_interned_tables_raw_string_value_fails(self):
        self.write_consistent_tree()
        self.write("src/web/graph.h", self.GRAPH_H_INTERNED.replace(
            "std::set<uint32_t> retired_hosts_;",
            "std::set<std::string> retired_hosts_;"))
        errors = self.run_lint({"web-interned-tables"})
        self.assertTrue(any("[web-interned-tables]" in e
                            and "retired" not in e for e in errors), errors)

    def test_web_interned_tables_outside_markers_exempt(self):
        # history_ (an opt-in test oracle) sits outside the markers and may
        # own full strings; only the audited region is constrained.
        self.write_consistent_tree()
        self.write("src/web/graph.h", self.GRAPH_H_INTERNED)
        errors = self.run_lint({"web-interned-tables"})
        self.assertFalse(any("history_" in e for e in errors), errors)

    def test_web_interned_tables_missing_markers_fail(self):
        self.write_consistent_tree()
        self.write("src/web/graph.h", self.GRAPH_H_INTERNED.replace(
            "  // webdis-lint: interned-tables-begin\n", ""))
        errors = self.run_lint({"web-interned-tables"})
        self.assertTrue(any("[web-interned-tables]" in e and "markers" in e
                            for e in errors), errors)

    def test_web_interned_tables_allow_comment_passes(self):
        self.write_consistent_tree()
        self.write("src/web/graph.h", self.GRAPH_H_INTERNED.replace(
            "  std::set<uint32_t> retired_hosts_;",
            "  // webdis-lint: allow(web-interned-tables) — audited bound\n"
            "  std::set<std::string> retired_hosts_;"))
        self.assertEqual(self.run_lint({"web-interned-tables"}), [])

    def test_web_interned_tables_absent_file_skipped(self):
        self.write_consistent_tree()  # no src/web/graph.h at all
        self.assertEqual(self.run_lint({"web-interned-tables"}), [])

    # -- end to end ----------------------------------------------------------

    def test_main_exit_codes(self):
        self.write_consistent_tree()
        self.assertEqual(webdis_lint.main(["--root", self.root]), 0)
        self.write("src/core/engine.cc", "auto* p = new Engine();\n")
        self.assertEqual(webdis_lint.main(["--root", self.root]), 1)
        self.assertEqual(webdis_lint.main(["--root", "/nonexistent/xyz"]), 2)


if __name__ == "__main__":
    unittest.main()
