// Quickstart: the complete WEBDIS API in one file.
//
// Builds a small synthetic web (the campus web from the paper's Section 5),
// deploys a simulated WEBDIS federation over it (one query server per site,
// one user site), submits the paper's Example Query 2 in DISQL, and prints
// the Figure 8 result table plus the run's cost metrics.
//
// The same five steps work against the real-socket transport too — see
// examples/tcp_demo.cpp.
#include <cstdio>

#include "core/engine.h"
#include "web/topologies.h"

int main() {
  // 1. A web to query. BuildCampusScenario() returns the IISc campus web of
  //    Figure 7; you can also build your own with WebGraph::AddDocument or
  //    generate one with web::GenerateSynthWeb.
  webdis::web::CampusScenario scenario = webdis::web::BuildCampusScenario();

  // 2. A deployment: Engine starts an HTTP server on every host, a WEBDIS
  //    query server on every participating host, and a user site, all wired
  //    over a deterministic simulated network. EngineOptions exposes every
  //    protocol knob (dedup, batching, termination mode, participation...).
  webdis::core::Engine engine(&scenario.web);

  // 3. A DISQL query. This is the paper's Example Query 2: find the
  //    Laboratories page of the CSA department, then the convener of each
  //    lab within one local link of the lab homepage, where the convener's
  //    name sits in an <hr>-delimited region.
  std::printf("DISQL query:\n%s\n", scenario.disql.c_str());

  // 4. Run it. Run() parses + compiles the DISQL, submits from the user
  //    site, drives the network until the CHT detects completion, and
  //    returns results plus metrics. Errors come back as Status — nothing
  //    throws.
  auto outcome = engine.Run(scenario.disql, "maya");
  if (!outcome.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 outcome.status().ToString().c_str());
    return 1;
  }

  // 5. Results, exactly as Figure 8 displays them: one section per
  //    node-query in the pipeline.
  std::printf("Results of the query by user maya:\n\n%s",
              webdis::core::FormatResults(outcome->results).c_str());

  std::printf("query completed:      %s\n",
              outcome->completed ? "yes (detected via CHT)" : "no");
  std::printf("virtual response:     %.1f ms\n",
              static_cast<double>(outcome->completion_time) / 1000.0);
  std::printf("network traffic:      %llu messages, %llu bytes\n",
              static_cast<unsigned long long>(outcome->traffic.messages),
              static_cast<unsigned long long>(outcome->traffic.bytes));
  std::printf("documents downloaded: %llu (query shipping moves queries, "
              "not documents)\n",
              static_cast<unsigned long long>(
                  outcome->traffic.fetch_messages));
  std::printf("node-query evals:     %llu across %zu sites\n",
              static_cast<unsigned long long>(
                  outcome->server_stats.node_queries_evaluated),
              engine.participating_hosts().size());
  return 0;
}
