// Site-map builder — the second motivating application from the paper's
// introduction: "applications which build site maps for a particular domain
// of web-servers would require all hyperlinks from those web-sites to be
// extracted. Instead of downloading all documents ... it would reduce
// network traffic if processing was done at the web-servers themselves and
// only the list of links sent back."
//
// The DISQL query follows every local link from a site's homepage (L*) and,
// at each page, projects the ANCHOR virtual relation — so only (base, href,
// ltype) triples travel back, never documents. The example then renders the
// site map as an indented tree and compares the traffic against downloading
// the site.
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/engine.h"
#include "web/topologies.h"

namespace {

void PrintTree(const std::map<std::string, std::vector<std::string>>& edges,
               const std::string& node, int depth,
               std::set<std::string>* seen) {
  std::printf("%*s%s\n", depth * 2, "", node.c_str());
  if (!seen->insert(node).second) return;
  auto it = edges.find(node);
  if (it == edges.end()) return;
  for (const std::string& child : it->second) {
    PrintTree(edges, child, depth + 1, seen);
  }
}

}  // namespace

int main() {
  webdis::web::CampusScenario scenario = webdis::web::BuildCampusScenario();
  webdis::core::Engine engine(&scenario.web);

  const std::string root = "http://www.csa.iisc.ernet.in/";
  // N|L* == L* (nullable): the root itself and everything reachable over
  // local links; each visited page returns its full anchor table.
  const std::string disql =
      "select a.base, a.href, a.ltype\n"
      "from document d such that \"" + root + "\" L* d,\n"
      "     anchor a\n";

  auto outcome = engine.Run(disql, "webmaster");
  if (!outcome.ok()) {
    std::fprintf(stderr, "site-map query failed: %s\n",
                 outcome.status().ToString().c_str());
    return 1;
  }

  std::map<std::string, std::vector<std::string>> local_edges;
  std::vector<std::pair<std::string, std::string>> external;
  for (const webdis::relational::ResultSet& rs : outcome->results) {
    if (rs.column_labels !=
        std::vector<std::string>{"a.base", "a.href", "a.ltype"}) {
      continue;
    }
    for (const webdis::relational::Tuple& row : rs.rows) {
      const std::string& base = row[0].AsString();
      const std::string& href = row[1].AsString();
      const std::string& ltype = row[2].AsString();
      if (ltype == "L" || ltype == "I") {
        local_edges[base].push_back(href);
      } else {
        external.emplace_back(base, href);
      }
    }
  }

  std::printf("Site map of %s (built by query shipping):\n\n", root.c_str());
  std::set<std::string> seen;
  PrintTree(local_edges, root, 0, &seen);

  std::printf("\nOutbound (global) links:\n");
  for (const auto& [base, href] : external) {
    std::printf("  %s -> %s\n", base.c_str(), href.c_str());
  }

  const size_t site_bytes = [&] {
    size_t total = 0;
    for (const std::string& url : scenario.web.UrlsOnHost(
             "www.csa.iisc.ernet.in")) {
      total += scenario.web.Find(url)->raw_html.size();
    }
    return total;
  }();
  std::printf(
      "\ntraffic: %llu bytes shipped (queries + link lists) vs %zu bytes of\n"
      "HTML a download-and-extract site mapper would have pulled.\n",
      static_cast<unsigned long long>(outcome->traffic.bytes), site_bytes);
  return 0;
}
