// The campus query over real TCP sockets — the same engine components that
// run on the simulated network, wired over net::TcpTransport: every site's
// query server listens on its own real 127.0.0.1 socket, clones and reports
// travel as length-prefixed binary frames, and passive termination rides on
// genuine ECONNREFUSED. This mirrors the paper's Java deployment (one
// daemon per site, one-shot sockets, hand serialization).
#include <cstdio>
#include <memory>
#include <vector>

#include "client/user_site.h"
#include "core/engine.h"
#include "disql/compiler.h"
#include "net/tcp.h"
#include "server/query_server.h"
#include "web/topologies.h"

int main() {
  webdis::web::CampusScenario scenario = webdis::web::BuildCampusScenario();
  webdis::net::TcpTransport tcp;

  // One WEBDIS daemon per campus host, all on the well-known query port
  // (mapped to distinct real localhost ports by the transport registry).
  std::vector<std::unique_ptr<webdis::server::QueryServer>> servers;
  for (const std::string& host : scenario.web.Hosts()) {
    auto server = std::make_unique<webdis::server::QueryServer>(
        host, &scenario.web, &tcp);
    auto status = server->Start();
    if (!status.ok()) {
      std::fprintf(stderr, "server %s failed: %s\n", host.c_str(),
                   status.ToString().c_str());
      return 1;
    }
    std::printf("query server %-32s -> 127.0.0.1:%u\n", host.c_str(),
                tcp.ResolvePort({host, webdis::server::kQueryServerPort}));
    servers.push_back(std::move(server));
  }

  webdis::client::UserSite user("user.site", &tcp);
  auto compiled = webdis::disql::CompileDisql(scenario.disql);
  if (!compiled.ok()) {
    std::fprintf(stderr, "compile failed: %s\n",
                 compiled.status().ToString().c_str());
    return 1;
  }
  std::printf("\nsubmitting Example Query 2 over TCP...\n");
  auto id = user.Submit(compiled.value(), "maya");
  if (!id.ok()) {
    std::fprintf(stderr, "submit failed: %s\n",
                 id.status().ToString().c_str());
    return 1;
  }

  // Pump deliveries on this thread until the exchange quiesces.
  const size_t dispatched = tcp.PumpUntilIdle(300);
  const webdis::client::UserSite::QueryRun* run = user.Find(id.value());
  std::printf("dispatched %zu messages over real sockets; completed=%s\n\n",
              dispatched, run->completed ? "yes" : "no");
  std::printf("%s", webdis::core::FormatResults(run->results).c_str());

  for (auto& server : servers) server->Stop();
  return run->completed ? 0 : 1;
}
