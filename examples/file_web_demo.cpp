// Serving real HTML files from disk: writes a small two-site web into a
// temporary directory, loads it with web::LoadWebFromDirectory, and runs a
// DISQL query over it — the workflow a downstream user with an existing
// static site would follow. Pass a directory argument to query your own
// files instead (layout: <dir>/<host>/<path>.html).
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "core/engine.h"
#include "web/fileweb.h"

namespace fs = std::filesystem;

namespace {

void WriteFile(const fs::path& path, const std::string& contents) {
  fs::create_directories(path.parent_path());
  std::ofstream out(path, std::ios::binary);
  out << contents;
}

fs::path MakeDemoSite() {
  const fs::path root = fs::temp_directory_path() / "webdis_file_demo";
  fs::remove_all(root);
  WriteFile(root / "lab.example" / "index.html",
            "<html><head><title>Systems Lab</title></head><body>"
            "<h1>Systems Lab</h1>"
            "<a href=\"/people.html\">People</a>"
            "<a href=\"http://archive.example/papers.html\">Papers</a>"
            "</body></html>");
  WriteFile(root / "lab.example" / "people.html",
            "<html><head><title>Lab People</title></head><body>"
            "CONVENER Dr. Example<hr>MEMBERS everyone else<hr>"
            "</body></html>");
  WriteFile(root / "archive.example" / "papers.html",
            "<html><head><title>Paper Archive</title></head><body>"
            "<p>All our papers.</p>"
            "<a href=\"/index.html\">home</a></body></html>");
  WriteFile(root / "archive.example" / "index.html",
            "<html><head><title>Archive Home</title></head><body>"
            "archive front door</body></html>");
  WriteFile(root / "archive.example" / "notes.txt", "not html, skipped");
  return root;
}

}  // namespace

int main(int argc, char** argv) {
  const fs::path root = argc > 1 ? fs::path(argv[1]) : MakeDemoSite();

  webdis::web::WebGraph web;
  auto stats = webdis::web::LoadWebFromDirectory(root.string(), &web);
  if (!stats.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 stats.status().ToString().c_str());
    return 1;
  }
  std::printf("loaded %zu documents from %zu host directories under %s "
              "(%zu non-HTML files skipped)\n\n",
              stats->documents_loaded, stats->hosts, root.string().c_str(),
              stats->files_skipped);
  for (const std::string& url : web.AllUrls()) {
    std::printf("  %s\n", url.c_str());
  }

  webdis::core::Engine engine(&web);
  const std::string disql =
      "select d.url, r.text\n"
      "from document d such that \"http://lab.example/\" L*1 d,\n"
      "     relinfon r such that r.delimiter = \"hr\",\n"
      "where r.text contains \"convener\"\n";
  std::printf("\nquery:\n%s\n", disql.c_str());
  auto outcome = engine.Run(disql);
  if (!outcome.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 outcome.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", webdis::core::FormatResults(outcome->results).c_str());
  return 0;
}
