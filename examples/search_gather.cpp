// Information gathering with index-assisted StartNodes — the paper's first
// motivating application (search-engine-style gathering, Section 1) combined
// with its future-work item of sourcing StartNodes from "existing
// search-indices" instead of user domain knowledge (Sections 1.1, 7.1).
//
// A small inverted index over the synthetic web supplies the StartNodes for
// a keyword; WEBDIS then fans out two hops from each hit and gathers the
// hr-delimited summaries of every matching page — with the per-document
// processing happening at the hosting sites.
#include <cstdio>
#include <string>

#include "core/engine.h"
#include "web/index.h"
#include "web/synth.h"

int main() {
  // A 12-site synthetic web with planted keywords.
  webdis::web::SynthWebOptions options;
  options.seed = 2026;
  options.num_sites = 12;
  options.docs_per_site = 10;
  options.title_keyword_prob = 0.15;
  options.body_keyword_prob = 0.25;
  const webdis::web::WebGraph web =
      webdis::web::GenerateSynthWeb(options);

  // Build the index (in a real deployment: an existing search engine).
  const webdis::web::SearchIndex index(web);
  const std::string keyword(webdis::web::kTitleKeyword);
  std::vector<std::string> start_nodes = index.Lookup(keyword);
  if (start_nodes.size() > 4) start_nodes.resize(4);  // cap the fan-out
  if (start_nodes.empty()) {
    std::fprintf(stderr, "index has no hits for '%s'\n", keyword.c_str());
    return 1;
  }
  std::printf("index lookup '%s': %zu StartNodes\n", keyword.c_str(),
              start_nodes.size());
  for (const std::string& url : start_nodes) {
    std::printf("  %s\n", url.c_str());
  }

  // Gather: from every StartNode, within two links of any kind, collect the
  // hr-delimited region of pages whose marker block mentions the body
  // keyword.
  std::string url_list;
  for (size_t i = 0; i < start_nodes.size(); ++i) {
    if (i > 0) url_list += ", ";
    url_list += "\"" + start_nodes[i] + "\"";
  }
  const std::string disql =
      "select d.url, r.text\n"
      "from document d such that (" + url_list + ") (I|L|G)*2 d,\n"
      "     relinfon r such that r.delimiter = \"hr\",\n"
      "where r.text contains \"" + std::string(webdis::web::kBodyKeyword) +
      "\"\n";

  webdis::core::Engine engine(&web);
  auto outcome = engine.Run(disql, "gatherer");
  if (!outcome.ok()) {
    std::fprintf(stderr, "gather failed: %s\n",
                 outcome.status().ToString().c_str());
    return 1;
  }

  std::printf("\ngathered summaries (processed at %zu sites, %llu "
              "node-query evaluations):\n\n",
              engine.participating_hosts().size(),
              static_cast<unsigned long long>(
                  outcome->server_stats.node_queries_evaluated));
  std::printf("%s", webdis::core::FormatResults(outcome->results).c_str());
  std::printf("traffic: %llu bytes total; %llu document downloads "
              "(query shipping needs none)\n",
              static_cast<unsigned long long>(outcome->traffic.bytes),
              static_cast<unsigned long long>(
                  outcome->traffic.fetch_messages));
  return 0;
}
