// Interactive DISQL shell — the CLI stand-in for the paper's Swing GUI
// (Figure 6). Deploys WEBDIS over the campus web (or a synthetic web with
// --synth) and reads DISQL queries from stdin; each query runs to completion
// and prints its Figure-8-style result sections plus cost metrics.
//
// Usage:
//   webdis_shell [--synth]
//   > select d.url from document d such that "http://www.csa.iisc.ernet.in/" L* d
//   > \urls          -- list all documents in the web
//   > \hosts         -- list all sites
//   > \quit
//
// Multi-line queries are supported: keep typing, finish with an empty line.
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "core/engine.h"
#include "web/synth.h"
#include "web/topologies.h"

namespace {

void RunQuery(webdis::core::Engine& engine, const std::string& disql) {
  auto outcome = engine.Run(disql, "shell");
  if (!outcome.ok()) {
    std::printf("error: %s\n", outcome.status().ToString().c_str());
    return;
  }
  std::printf("%s", webdis::core::FormatResults(outcome->results).c_str());
  std::printf("-- %zu rows, %s, %.1f ms virtual, %llu msgs / %llu bytes, "
              "%llu evals\n\n",
              outcome->TotalRows(),
              outcome->completed ? "complete" : "INCOMPLETE",
              static_cast<double>(outcome->completion_time) / 1000.0,
              static_cast<unsigned long long>(outcome->traffic.messages),
              static_cast<unsigned long long>(outcome->traffic.bytes),
              static_cast<unsigned long long>(
                  outcome->server_stats.node_queries_evaluated));
}

}  // namespace

int main(int argc, char** argv) {
  const bool synth = argc > 1 && std::strcmp(argv[1], "--synth") == 0;
  webdis::web::WebGraph web;
  if (synth) {
    webdis::web::SynthWebOptions options;
    options.num_sites = 6;
    options.docs_per_site = 8;
    web = webdis::web::GenerateSynthWeb(options);
    std::printf("synthetic web: %zu documents on %zu sites "
                "(keywords: alpha in titles, beta in hr blocks)\n",
                web.num_documents(), web.Hosts().size());
  } else {
    web = std::move(webdis::web::BuildCampusScenario().web);
    std::printf("campus web loaded (%zu documents); try the paper's "
                "Example Query 2 or \\example\n",
                web.num_documents());
  }
  webdis::core::Engine engine(&web);

  std::string buffer;
  std::string line;
  std::printf("webdis> ");
  std::fflush(stdout);
  while (std::getline(std::cin, line)) {
    if (line == "\\quit" || line == "\\q") break;
    if (line == "\\urls") {
      for (const std::string& url : web.AllUrls()) {
        std::printf("  %s\n", url.c_str());
      }
      std::printf("webdis> ");
      std::fflush(stdout);
      continue;
    }
    if (line == "\\hosts") {
      for (const std::string& host : web.Hosts()) {
        std::printf("  %s\n", host.c_str());
      }
      std::printf("webdis> ");
      std::fflush(stdout);
      continue;
    }
    if (line.rfind("\\explain", 0) == 0) {
      // \explain on its own explains the campus example; otherwise the
      // buffered query.
      const std::string text = !buffer.empty()
                                   ? buffer
                                   : webdis::web::BuildCampusScenario().disql;
      auto compiled = webdis::disql::CompileDisql(text);
      if (compiled.ok()) {
        std::printf("%s", webdis::disql::ExplainQuery(compiled.value()).c_str());
      } else {
        std::printf("error: %s\n", compiled.status().ToString().c_str());
      }
      buffer.clear();
      std::printf("webdis> ");
      std::fflush(stdout);
      continue;
    }
    if (line == "\\example") {
      const std::string example = webdis::web::BuildCampusScenario().disql;
      std::printf("%s\n", example.c_str());
      RunQuery(engine, example);
      std::printf("webdis> ");
      std::fflush(stdout);
      continue;
    }
    if (!line.empty()) {
      buffer += line + "\n";
      // A one-liner that looks complete runs immediately; otherwise keep
      // accumulating until a blank line.
      std::printf("      > ");
      std::fflush(stdout);
      continue;
    }
    if (!buffer.empty()) {
      RunQuery(engine, buffer);
      buffer.clear();
    }
    std::printf("webdis> ");
    std::fflush(stdout);
  }
  if (!buffer.empty()) RunQuery(engine, buffer);
  return 0;
}
