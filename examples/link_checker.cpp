// Floating-link checker — the maintenance application from Section 1.2:
// "WEBDIS can be used for maintenance activities such as detecting the
// presence of 'floating links' (links pointing to non-existent documents),
// a commonly encountered problem in web-site administration."
//
// Phase 1 (query shipping): a DISQL query walks the target site over local
// links and returns every (base, href) anchor pair — the documents stay on
// the server.
// Phase 2 (verification): each distinct href is probed with a lightweight
// HTTP fetch; misses are the floating links.
#include <cstdio>
#include <map>
#include <set>
#include <string>

#include "core/engine.h"
#include "html/url.h"
#include "server/http_server.h"
#include "web/pagegen.h"
#include "web/topologies.h"

namespace {

/// Probes a URL over the engine's simulated HTTP: returns true if the host
/// serves the document. (A 1999 checker would issue an HTTP HEAD.)
bool Probe(webdis::core::Engine& engine, const std::string& url,
           bool* responded) {
  using webdis::net::Endpoint;
  using webdis::net::MessageType;
  using webdis::server::HttpServer;
  static uint16_t probe_port = 18000;
  const Endpoint me{"checker.site", ++probe_port};
  bool found = false;
  bool got = false;
  auto status = engine.network().Listen(
      me, [&](const Endpoint&, MessageType type,
              const std::vector<uint8_t>& payload) {
        if (type != MessageType::kFetchResponse) return;
        HttpServer::FetchResponse resp;
        if (HttpServer::DecodeFetchResponse(payload, &resp).ok()) {
          got = true;
          found = resp.found;
        }
      });
  if (!status.ok()) return false;
  auto parsed = webdis::html::ParseUrl(url);
  if (parsed.ok()) {
    status = engine.network().Send(
        me, Endpoint{parsed->host, webdis::server::kHttpPort},
        MessageType::kFetchRequest, HttpServer::EncodeFetchRequest(url));
    if (status.ok()) engine.network().RunUntilIdle();
  }
  engine.network().CloseListener(me);
  *responded = got;
  return found;
}

}  // namespace

int main() {
  // Start from the campus web and plant some rot: a page with two broken
  // links (one to a missing page, one to a dead host).
  webdis::web::CampusScenario scenario = webdis::web::BuildCampusScenario();
  {
    webdis::web::PageSpec stale;
    stale.title = "Old announcements";
    stale.links = {
        {"/events1997", "1997 events (page was removed)"},
        {"http://gopher.iisc.ernet.in/", "gopher archive (host is gone)"},
        {"/Labs", "laboratories"},
    };
    auto status = scenario.web.AddDocument(
        "http://www.csa.iisc.ernet.in/announcements",
        webdis::web::RenderHtml(stale));
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
  }
  webdis::core::Engine engine(&scenario.web);

  // Phase 1: gather all anchors of the site by query shipping. The
  // StartNode list covers the roots of the site's local-link components.
  const std::string disql =
      "select a.base, a.href\n"
      "from document d such that (\"http://www.csa.iisc.ernet.in/\", "
      "\"http://www.csa.iisc.ernet.in/announcements\") L* d,\n"
      "     anchor a\n";
  auto outcome = engine.Run(disql, "webmaster");
  if (!outcome.ok()) {
    std::fprintf(stderr, "gather failed: %s\n",
                 outcome.status().ToString().c_str());
    return 1;
  }

  std::map<std::string, std::set<std::string>> referers;  // href -> bases
  for (const webdis::relational::ResultSet& rs : outcome->results) {
    if (rs.column_labels != std::vector<std::string>{"a.base", "a.href"}) {
      continue;
    }
    for (const webdis::relational::Tuple& row : rs.rows) {
      referers[row[1].AsString()].insert(row[0].AsString());
    }
  }
  std::printf("gathered %zu distinct link targets from "
              "www.csa.iisc.ernet.in by query shipping\n\n",
              referers.size());

  // Phase 2: probe each target.
  int floating = 0;
  for (const auto& [href, bases] : referers) {
    bool responded = false;
    const bool found = Probe(engine, href, &responded);
    if (found) continue;
    ++floating;
    std::printf("FLOATING LINK: %s (%s)\n", href.c_str(),
                responded ? "404 not found" : "host unreachable");
    for (const std::string& base : bases) {
      std::printf("    referenced from %s\n", base.c_str());
    }
  }
  if (floating == 0) {
    std::printf("no floating links found\n");
  } else {
    std::printf("\n%d floating link(s) need attention\n", floating);
  }
  return 0;
}
