#include "fuzz/fuzz_util.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <vector>

#include "disql/compiler.h"
#include "net/transport.h"
#include "query/report.h"
#include "query/web_query.h"
#include "serialize/encoder.h"
#include "serialize/framing.h"
#include "server/http_server.h"
#include "server/persist.h"

namespace webdis::fuzz {
namespace {

// A failed check is a finding: abort so libFuzzer saves the input and the
// replay driver fails the ctest run. The message names the violated
// property, not just the file/line.
[[noreturn]] void Fail(const char* property) {
  std::fprintf(stderr, "webdis-fuzz: property violated: %s\n", property);
  std::abort();
}

void Check(bool ok, const char* property) {
  if (!ok) Fail(property);
}

// Decodes `payload` as the given wire message type and, on success, writes
// its canonical re-encoding. Returns false when the payload is rejected
// (which must always be an explicit Status, never a crash) or the type is
// unknown to the dispatcher.
bool CanonicalizeWirePayload(uint8_t raw_type,
                             const std::vector<uint8_t>& payload,
                             std::vector<uint8_t>* canonical) {
  serialize::Decoder dec(payload);
  serialize::Encoder enc;
  switch (static_cast<net::MessageType>(raw_type)) {
    case net::MessageType::kWebQuery: {
      query::WebQuery msg;
      if (!query::WebQuery::DecodeFrom(&dec, &msg).ok()) return false;
      if (!dec.ExpectAtEnd("clone payload").ok()) return false;
      msg.EncodeTo(&enc);
      break;
    }
    case net::MessageType::kReport: {
      query::QueryReport msg;
      if (!query::QueryReport::DecodeFrom(&dec, &msg).ok()) return false;
      if (!dec.ExpectAtEnd("report payload").ok()) return false;
      msg.EncodeTo(&enc);
      break;
    }
    case net::MessageType::kTerminate: {
      query::QueryId msg;
      if (!query::QueryId::DecodeFrom(&dec, &msg).ok()) return false;
      if (!dec.ExpectAtEnd("terminate payload").ok()) return false;
      msg.EncodeTo(&enc);
      break;
    }
    case net::MessageType::kFetchRequest: {
      std::string url;
      if (!server::HttpServer::DecodeFetchRequest(payload, &url).ok()) {
        return false;
      }
      *canonical = server::HttpServer::EncodeFetchRequest(url);
      return true;
    }
    case net::MessageType::kFetchResponse: {
      server::HttpServer::FetchResponse resp;
      if (!server::HttpServer::DecodeFetchResponse(payload, &resp).ok()) {
        return false;
      }
      *canonical = server::HttpServer::EncodeFetchResponse(resp);
      return true;
    }
    case net::MessageType::kAck:
    case net::MessageType::kDeliveryAck:
    case net::MessageType::kOverloaded:
    case net::MessageType::kSiteRetired: {
      uint64_t v = 0;
      if (!dec.GetU64(&v).ok()) return false;
      if (!dec.ExpectAtEnd("u64 payload").ok()) return false;
      enc.PutU64(v);
      break;
    }
    case net::MessageType::kCloneBatch: {
      query::CloneBatch msg;
      if (!query::CloneBatch::DecodeFrom(&dec, &msg).ok()) return false;
      if (!dec.ExpectAtEnd("clone-batch payload").ok()) return false;
      msg.EncodeTo(&enc);
      break;
    }
    case net::MessageType::kReportBatch: {
      query::ReportBatch msg;
      if (!query::ReportBatch::DecodeFrom(&dec, &msg).ok()) return false;
      if (!dec.ExpectAtEnd("report-batch payload").ok()) return false;
      msg.EncodeTo(&enc);
      break;
    }
    default:
      return false;  // type unknown to the application layer
  }
  *canonical = enc.Release();
  return true;
}

// WAL-record equivalent of CanonicalizeWirePayload.
bool CanonicalizeWalPayload(server::WalRecordType type,
                            const std::vector<uint8_t>& payload,
                            std::vector<uint8_t>* canonical) {
  serialize::Decoder dec(payload);
  serialize::Encoder enc;
  switch (type) {
    case server::WalRecordType::kCloneAdmitted: {
      server::WalCloneAdmitted rec;
      if (!server::WalCloneAdmitted::DecodeFrom(&dec, &rec).ok()) {
        return false;
      }
      if (!dec.ExpectAtEnd("WAL clone-admitted record").ok()) return false;
      rec.EncodeTo(&enc);
      break;
    }
    case server::WalRecordType::kCloneCompleted: {
      server::WalCloneCompleted rec;
      if (!server::WalCloneCompleted::DecodeFrom(&dec, &rec).ok()) {
        return false;
      }
      if (!dec.ExpectAtEnd("WAL clone-completed record").ok()) return false;
      rec.EncodeTo(&enc);
      break;
    }
    case server::WalRecordType::kTransferSeen: {
      server::WalTransferSeen rec;
      if (!server::WalTransferSeen::DecodeFrom(&dec, &rec).ok()) {
        return false;
      }
      if (!dec.ExpectAtEnd("WAL transfer-seen record").ok()) return false;
      rec.EncodeTo(&enc);
      break;
    }
    case server::WalRecordType::kQueryTerminated: {
      server::WalQueryTerminated rec;
      if (!server::WalQueryTerminated::DecodeFrom(&dec, &rec).ok()) {
        return false;
      }
      if (!dec.ExpectAtEnd("WAL query-terminated record").ok()) return false;
      rec.EncodeTo(&enc);
      break;
    }
    case server::WalRecordType::kBatchAdmitted: {
      server::WalBatchAdmitted rec;
      if (!server::WalBatchAdmitted::DecodeFrom(&dec, &rec).ok()) {
        return false;
      }
      if (!dec.ExpectAtEnd("WAL batch-admitted record").ok()) return false;
      rec.EncodeTo(&enc);
      break;
    }
    default:
      return false;
  }
  *canonical = enc.Release();
  return true;
}

}  // namespace

int FuzzWireFrame(const uint8_t* data, size_t size) {
  const std::vector<uint8_t> input(data, data + size);
  auto frame = serialize::DecodeFrame(input);
  if (!frame.ok()) return 0;  // rejected at the frame layer: fine
  std::vector<uint8_t> c1;
  if (!CanonicalizeWirePayload(frame->type, frame->payload, &c1)) return 0;
  const std::vector<uint8_t> framed1 = serialize::EncodeFrame(frame->type, c1);
  auto again = serialize::DecodeFrame(framed1);
  Check(again.ok(), "re-encoded wire frame must decode");
  std::vector<uint8_t> c2;
  Check(CanonicalizeWirePayload(again->type, again->payload, &c2),
        "re-encoded wire payload must decode");
  Check(c1 == c2, "wire payload re-encoding must be a fixpoint");
  return 0;
}

int FuzzWalStream(const uint8_t* data, size_t size) {
  const std::vector<uint8_t> input(data, data + size);
  const server::WalReadResult first = server::DecodeWal(input);
  // Re-frame every record whose payload parses; replay skips the rest, so
  // the canonical stream contains exactly the replayable records.
  std::vector<uint8_t> stream1;
  size_t replayable = 0;
  for (const server::WalRecord& record : first.records) {
    std::vector<uint8_t> canonical;
    if (!CanonicalizeWalPayload(record.type, record.payload, &canonical)) {
      continue;
    }
    const std::vector<uint8_t> framed =
        server::EncodeWalRecord(record.type, canonical);
    stream1.insert(stream1.end(), framed.begin(), framed.end());
    ++replayable;
  }
  const server::WalReadResult second = server::DecodeWal(stream1);
  Check(second.records.size() == replayable,
        "canonical WAL stream must parse completely");
  Check(second.discarded_records == 0 && second.discarded_bytes == 0,
        "canonical WAL stream must have no torn tail");
  std::vector<uint8_t> stream2;
  for (const server::WalRecord& record : second.records) {
    std::vector<uint8_t> canonical;
    Check(CanonicalizeWalPayload(record.type, record.payload, &canonical),
          "canonical WAL payload must decode");
    const std::vector<uint8_t> framed =
        server::EncodeWalRecord(record.type, canonical);
    stream2.insert(stream2.end(), framed.begin(), framed.end());
  }
  Check(stream1 == stream2, "WAL stream re-encoding must be a fixpoint");
  return 0;
}

int FuzzSnapshot(const uint8_t* data, size_t size) {
  const std::vector<uint8_t> input(data, data + size);
  server::DurableServerState state;
  if (!server::DecodeSnapshot(input, &state).ok()) return 0;
  const std::vector<uint8_t> image1 = server::EncodeSnapshot(state);
  server::DurableServerState state2;
  Check(server::DecodeSnapshot(image1, &state2).ok(),
        "re-encoded snapshot must decode");
  const std::vector<uint8_t> image2 = server::EncodeSnapshot(state2);
  Check(image1 == image2, "snapshot re-encoding must be a fixpoint");
  return 0;
}

// -- Seed + regression corpus ------------------------------------------------

namespace {

bool WriteFile(const std::filesystem::path& path,
               const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  return static_cast<bool>(out);
}

// The canonical single-stage clone, mirroring MinimalClone() in
// tests/wire_golden_test.cc (whose frozen hex image golden-tests the same
// bytes these seeds carry).
bool MinimalClone(query::WebQuery* out) {
  auto compiled = disql::CompileDisql(
      "select d.url from document d such that \"http://a/\" L d");
  if (!compiled.ok()) return false;
  *out = compiled->web_query.Clone();
  out->id.user = "u";
  out->id.reply_host = "h";
  out->id.reply_port = 1;
  out->id.query_number = 1;
  out->dest_urls = {"http://a/"};
  return true;
}

std::vector<uint8_t> Encoded(const query::WebQuery& clone) {
  serialize::Encoder enc;
  clone.EncodeTo(&enc);
  return enc.Release();
}

// Hand-framed snapshot image: header + CRC over an arbitrary body, for
// regression inputs whose *body* is malformed (the header must check out or
// the body decoder is never reached).
std::vector<uint8_t> FrameSnapshotBody(const std::vector<uint8_t>& body) {
  serialize::Encoder out;
  out.PutU32(server::kSnapshotMagic);
  out.PutU8(server::kSnapshotVersion);
  out.PutU32(static_cast<uint32_t>(body.size()));
  out.PutU32(serialize::Crc32(body));
  out.PutRaw(body.data(), body.size());
  return out.Release();
}

}  // namespace

int WriteSeedCorpus(const std::string& root) {
  namespace fs = std::filesystem;
  std::error_code ec;
  for (const char* sub : {"wire", "wal", "snapshot"}) {
    fs::create_directories(fs::path(root) / sub, ec);
    if (ec) return -1;
  }
  query::WebQuery clone;
  if (!MinimalClone(&clone)) return -1;
  const std::vector<uint8_t> clone_bytes = Encoded(clone);

  int written = 0;
  auto put = [&](const char* sub, const char* name,
                 const std::vector<uint8_t>& bytes) {
    if (written < 0) return;
    if (WriteFile(fs::path(root) / sub / name, bytes)) {
      ++written;
    } else {
      written = -1;
    }
  };
  auto frame = [](net::MessageType type, const std::vector<uint8_t>& payload) {
    return serialize::EncodeFrame(static_cast<uint8_t>(type), payload);
  };

  // --- wire seeds: one golden frame per MessageType ---
  put("wire", "seed-webquery.bin",
      frame(net::MessageType::kWebQuery, clone_bytes));
  {
    query::QueryReport report;
    report.id = clone.id;
    query::NodeReport nr;
    nr.node_url = "http://a/";
    nr.received_state = {1, clone.rem_pre};
    nr.next_entries.push_back(query::ChtEntry{"http://b/", {2, clone.rem_pre}});
    relational::ResultSet rs;
    rs.column_labels = {"url"};
    rs.rows.push_back({relational::Value(std::string("http://a/"))});
    nr.result_sets.push_back(std::move(rs));
    report.node_reports.push_back(std::move(nr));
    serialize::Encoder enc;
    report.EncodeTo(&enc);
    put("wire", "seed-report.bin",
        frame(net::MessageType::kReport, enc.data()));
    query::ReportBatch batch;
    batch.reports.push_back(report);
    batch.reports.push_back(std::move(report));
    batch.reports[1].id.query_number = 2;
    serialize::Encoder batch_enc;
    batch.EncodeTo(&batch_enc);
    put("wire", "seed-reportbatch.bin",
        frame(net::MessageType::kReportBatch, batch_enc.data()));
  }
  {
    // §10 version-stamped report: nonzero doc_version + non-normal
    // visibility, so the fuzzer starts from the new trailing fields too.
    query::QueryReport report;
    report.id = clone.id;
    query::NodeReport nr;
    nr.node_url = "http://a/";
    nr.received_state = {1, clone.rem_pre};
    nr.doc_version = 5;
    nr.visibility = query::NodeReport::kVisibilityEpochGated;
    report.node_reports.push_back(std::move(nr));
    serialize::Encoder enc;
    report.EncodeTo(&enc);
    put("wire", "seed-report-stamped.bin",
        frame(net::MessageType::kReport, enc.data()));
  }
  {
    // §10.1 epoch-pinned clone: budget flags bit 4 + varint epoch.
    query::WebQuery pinned = clone.Clone();
    pinned.budget.pinned_epoch = 3;
    put("wire", "seed-webquery-epoch.bin",
        frame(net::MessageType::kWebQuery, Encoded(pinned)));
  }
  {
    serialize::Encoder enc;
    clone.id.EncodeTo(&enc);
    put("wire", "seed-terminate.bin",
        frame(net::MessageType::kTerminate, enc.data()));
  }
  put("wire", "seed-fetchrequest.bin",
      frame(net::MessageType::kFetchRequest,
            server::HttpServer::EncodeFetchRequest("http://a/")));
  {
    server::HttpServer::FetchResponse resp;
    resp.url = "http://a/";
    resp.found = true;
    resp.html = "<a href=\"http://b/\">b</a>";
    put("wire", "seed-fetchresponse.bin",
        frame(net::MessageType::kFetchResponse,
              server::HttpServer::EncodeFetchResponse(resp)));
  }
  for (const auto& [type, name] :
       {std::pair{net::MessageType::kAck, "seed-ack.bin"},
        std::pair{net::MessageType::kDeliveryAck, "seed-deliveryack.bin"},
        std::pair{net::MessageType::kOverloaded, "seed-overloaded.bin"},
        std::pair{net::MessageType::kSiteRetired, "seed-siteretired.bin"}}) {
    serialize::Encoder enc;
    enc.PutU64(42);
    put("wire", name, frame(type, enc.data()));
  }
  {
    query::CloneBatch batch;
    batch.clones.push_back(clone.Clone());
    batch.clones.push_back(clone.Clone());
    batch.clones[1].id.query_number = 2;
    serialize::Encoder enc;
    batch.EncodeTo(&enc);
    put("wire", "seed-clonebatch.bin",
        frame(net::MessageType::kCloneBatch, enc.data()));
  }

  // --- wire regression entries: one per hardening fix ---
  {
    // Batch claims 3 members but carries 1: the member loop must hit clean
    // truncation Corruption, never a partial 1-member batch.
    serialize::Encoder payload;
    payload.PutVarint(3);
    payload.PutRaw(clone_bytes.data(), clone_bytes.size());
    put("wire", "regress-clonebatch-truncated-members.bin",
        frame(net::MessageType::kCloneBatch, payload.Release()));
  }
  {
    // Member-count/length mismatch the other way: count 1, two members'
    // bytes. The frame-layer trailing-garbage check must reject it.
    serialize::Encoder payload;
    payload.PutVarint(1);
    payload.PutRaw(clone_bytes.data(), clone_bytes.size());
    payload.PutRaw(clone_bytes.data(), clone_bytes.size());
    put("wire", "regress-clonebatch-count-mismatch.bin",
        frame(net::MessageType::kCloneBatch, payload.Release()));
  }
  {
    // Trailing garbage after a valid clone: ExpectAtEnd regression.
    serialize::Encoder payload;
    payload.PutRaw(clone_bytes.data(), clone_bytes.size());
    payload.PutU8(0xEE);
    put("wire", "regress-webquery-trailing-garbage.bin",
        frame(net::MessageType::kWebQuery, payload.Release()));
  }
  {
    // Huge node-query count with no bytes behind it: GetCount regression
    // (pre-hardening this span a long decode loop to the truncation error).
    serialize::Encoder payload;
    clone.id.EncodeTo(&payload);
    payload.PutVarint(0xFFFFFF);
    put("wire", "regress-webquery-huge-query-count.bin",
        frame(net::MessageType::kWebQuery, payload.Release()));
  }

  // --- WAL seeds + regressions ---
  std::vector<uint8_t> wal_all;
  auto append_record = [&wal_all](server::WalRecordType type,
                                  const serialize::Encoder& enc) {
    const std::vector<uint8_t> framed =
        server::EncodeWalRecord(type, enc.data());
    wal_all.insert(wal_all.end(), framed.begin(), framed.end());
  };
  {
    serialize::Encoder enc;
    server::WalCloneAdmitted{7, {"h", 1}, true, 3, clone.Clone()}.EncodeTo(
        &enc);
    append_record(server::WalRecordType::kCloneAdmitted, enc);
  }
  {
    serialize::Encoder enc;
    server::WalCloneCompleted{7}.EncodeTo(&enc);
    append_record(server::WalRecordType::kCloneCompleted, enc);
  }
  {
    serialize::Encoder enc;
    server::WalTransferSeen{{"h", 1}, 4}.EncodeTo(&enc);
    append_record(server::WalRecordType::kTransferSeen, enc);
  }
  {
    serialize::Encoder enc;
    server::WalQueryTerminated{clone.id.Key()}.EncodeTo(&enc);
    append_record(server::WalRecordType::kQueryTerminated, enc);
  }
  {
    serialize::Encoder enc;
    server::WalBatchAdmitted batch;
    batch.first_record_id = 8;
    batch.from = {"h", 1};
    batch.tracked = true;
    batch.seq = 5;
    batch.clones.push_back(clone.Clone());
    batch.clones.push_back(clone.Clone());
    batch.clones[1].id.query_number = 2;
    batch.EncodeTo(&enc);
    append_record(server::WalRecordType::kBatchAdmitted, enc);
  }
  put("wal", "seed-all-types.bin", wal_all);
  {
    // Torn tail: all records plus half a header. DecodeWal must surface the
    // parsed prefix and count the discard, never read past the buffer.
    std::vector<uint8_t> torn = wal_all;
    torn.insert(torn.end(), {static_cast<uint8_t>(1), 0xFF, 0xFF});
    put("wal", "regress-torn-tail.bin", torn);
  }
  {
    // Nested-member CRC damage: flip one byte inside the kBatchAdmitted
    // record's second member. The record checksum must reject the whole
    // record — replay sees no partial batch.
    std::vector<uint8_t> damaged = wal_all;
    damaged[damaged.size() - 4] ^= 0x01;
    put("wal", "regress-batch-member-crc-damage.bin", damaged);
  }
  {
    // Valid record frame (CRC passes) whose payload claims 2000 batch
    // members: the payload decoder's GetCount must reject explicitly.
    serialize::Encoder payload;
    payload.PutU64(8);
    payload.PutString("h");
    payload.PutU16(1);
    payload.PutBool(false);
    payload.PutU64(5);
    payload.PutVarint(2000);
    put("wal", "regress-batchadmitted-huge-count.bin",
        server::EncodeWalRecord(server::WalRecordType::kBatchAdmitted,
                                payload.data()));
  }

  // --- snapshot seeds + regressions ---
  {
    server::DurableServerState state;
    state.last_wal_id = 7;
    state.terminated_queries = {clone.id.Key()};
    state.seen_transfers.emplace_back(net::Endpoint{"h", 1}, 3);
    server::DurablePendingClone pending;
    pending.record_id = 9;
    pending.from = {"h", 1};
    pending.tracked = true;
    pending.seq = 4;
    pending.clone = clone.Clone();
    state.pending_clones.push_back(std::move(pending));
    put("snapshot", "seed-state.bin", server::EncodeSnapshot(state));
  }
  {
    server::DurableServerState empty;
    put("snapshot", "seed-empty.bin", server::EncodeSnapshot(empty));
  }
  {
    // The LogTable reserve bug: a checksummed body whose log table claims a
    // multi-exabyte pre count. Pre-hardening, LogTable::DecodeFrom passed
    // the raw count to vector::reserve and std::length_error aborted the
    // server; it must be Corruption.
    serialize::Encoder body;
    body.PutU64(0);           // last_wal_id
    body.PutVarint(1);        // 1 log-table group
    body.PutString("n");      // node_url
    body.PutString("q");      // query_key
    body.PutU32(1);           // num_q
    body.PutVarint(0xFFFFFFFFFFFFull);  // pre_count: absurd
    put("snapshot", "regress-logtable-huge-pre-count.bin",
        FrameSnapshotBody(body.data()));
  }
  {
    // Trailing bytes after a fully decoded body: ExpectAtEnd regression.
    server::DurableServerState empty;
    std::vector<uint8_t> image = server::EncodeSnapshot(empty);
    serialize::Encoder body;
    body.PutRaw(image.data() + server::kSnapshotHeaderSize,
                image.size() - server::kSnapshotHeaderSize);
    body.PutU8(0xEE);
    put("snapshot", "regress-trailing-bytes.bin",
        FrameSnapshotBody(body.data()));
  }
  return written;
}

}  // namespace webdis::fuzz
