// libFuzzer harness for the wire-frame decoder (all MessageTypes, including
// the batch envelopes and their nested members). Build with
// -DWEBDIS_FUZZ=ON under clang; see CONTRIBUTING.md "Fuzzing".
#include "fuzz/fuzz_util.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  return webdis::fuzz::FuzzWireFrame(data, size);
}
