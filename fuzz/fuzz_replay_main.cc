// Plain (no fuzzer runtime) driver for the checked-in corpus: replays every
// input under <corpus>/{wire,wal,snapshot}/ through the matching fuzz
// dispatcher. Runs as the `fuzz_replay_test` ctest target, so tier-1 and
// the ASan CI job exercise every golden-frame seed and every hardening
// regression input on each build — a decoder crash or round-trip fixpoint
// violation aborts and fails the test.
//
// Usage:
//   fuzz_replay <corpus_root>            replay the corpus
//   fuzz_replay --write-seeds <root>     (re)generate the seed + regression
//                                        corpus (see fuzz_util.h)
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "fuzz/fuzz_util.h"

namespace {

bool ReadFile(const std::filesystem::path& path, std::vector<uint8_t>* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  out->assign(std::istreambuf_iterator<char>(in),
              std::istreambuf_iterator<char>());
  return true;
}

int ReplayDir(const std::filesystem::path& dir,
              int (*dispatch)(const uint8_t*, size_t)) {
  if (!std::filesystem::is_directory(dir)) {
    std::fprintf(stderr, "fuzz_replay: missing corpus dir %s\n",
                 dir.string().c_str());
    return -1;
  }
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.is_regular_file()) files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());  // deterministic replay order
  for (const auto& path : files) {
    std::vector<uint8_t> bytes;
    if (!ReadFile(path, &bytes)) {
      std::fprintf(stderr, "fuzz_replay: cannot read %s\n",
                   path.string().c_str());
      return -1;
    }
    std::fprintf(stderr, "fuzz_replay: %s (%zu bytes)\n",
                 path.string().c_str(), bytes.size());
    (void)dispatch(bytes.data(), bytes.size());  // aborts on a finding
  }
  return static_cast<int>(files.size());
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 3 && std::strcmp(argv[1], "--write-seeds") == 0) {
    const int written = webdis::fuzz::WriteSeedCorpus(argv[2]);
    if (written < 0) {
      std::fprintf(stderr, "fuzz_replay: seed generation failed\n");
      return 1;
    }
    std::printf("fuzz_replay: wrote %d corpus files under %s\n", written,
                argv[2]);
    return 0;
  }
  if (argc != 2) {
    std::fprintf(stderr,
                 "usage: fuzz_replay <corpus_root> | "
                 "fuzz_replay --write-seeds <root>\n");
    return 2;
  }
  const std::filesystem::path root(argv[1]);
  const int wire = ReplayDir(root / "wire", webdis::fuzz::FuzzWireFrame);
  const int wal = ReplayDir(root / "wal", webdis::fuzz::FuzzWalStream);
  const int snapshot = ReplayDir(root / "snapshot", webdis::fuzz::FuzzSnapshot);
  if (wire < 0 || wal < 0 || snapshot < 0) return 1;
  if (wire + wal + snapshot == 0) {
    std::fprintf(stderr, "fuzz_replay: empty corpus at %s\n", argv[1]);
    return 1;  // a vanished corpus must not read as a green run
  }
  std::printf("fuzz_replay: %d wire, %d wal, %d snapshot inputs replayed\n",
              wire, wal, snapshot);
  return 0;
}
