#ifndef WEBDIS_FUZZ_FUZZ_UTIL_H_
#define WEBDIS_FUZZ_FUZZ_UTIL_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace webdis::fuzz {

/// Shared fuzz dispatchers — one per untrusted-byte surface. Each feeds the
/// input to the production decoder and, when the input parses, asserts the
/// round-trip fixpoint property: re-encoding the decoded value yields a
/// canonical byte image that decodes back and re-encodes byte-identically.
/// (The input itself need not be canonical — LEB128 varints accept redundant
/// continuation bytes — but one re-encoding must reach a fixed point.)
/// Malformed input must produce an explicit Corruption status; any crash,
/// sanitizer report, or fixpoint violation aborts the process, which is how
/// both libFuzzer and the plain corpus-replay driver report a finding.
///
/// All three return 0 (the libFuzzer convention for "input consumed").
int FuzzWireFrame(const uint8_t* data, size_t size);
int FuzzWalStream(const uint8_t* data, size_t size);
int FuzzSnapshot(const uint8_t* data, size_t size);

/// Writes the mechanical seed corpus under `root`/{wire,wal,snapshot}:
/// one well-formed input per wire message type / WAL record type / snapshot
/// image (mirroring the golden objects in tests/wire_golden_test.cc and
/// tests/persist_golden_test.cc), plus the checked-in regression entries —
/// one malformed input per decoder hardening fix, kept so the bug class
/// stays covered by plain ctest replay forever. Returns the number of files
/// written, or -1 on I/O failure.
int WriteSeedCorpus(const std::string& root);

}  // namespace webdis::fuzz

#endif  // WEBDIS_FUZZ_FUZZ_UTIL_H_
