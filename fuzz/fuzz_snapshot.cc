// libFuzzer harness for the snapshot-image decoder (header validation +
// DurableServerState body). Build with -DWEBDIS_FUZZ=ON under clang; see
// CONTRIBUTING.md "Fuzzing".
#include "fuzz/fuzz_util.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  return webdis::fuzz::FuzzSnapshot(data, size);
}
