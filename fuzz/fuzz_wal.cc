// libFuzzer harness for the WAL record-stream decoder (all WalRecordTypes,
// torn tails, per-record CRC). Build with -DWEBDIS_FUZZ=ON under clang; see
// CONTRIBUTING.md "Fuzzing".
#include "fuzz/fuzz_util.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  return webdis::fuzz::FuzzWalStream(data, size);
}
